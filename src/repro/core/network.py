"""The discrete Distance Halving DHT ``G_x`` (paper §2.1).

Given a set of id points ``x``, each server owns the segment
``s(x_i) = [x_i, x_{i+1})``; a pair ``(V_i, V_j)`` is an edge whenever the
continuous graph has an edge ``(y, z)`` with ``y ∈ s(x_i)`` and
``z ∈ s(x_j)``; ring edges ``(V_i, V_{i+1})`` are added so ``G_x``
contains a ring.  Everything — joins, leaves, neighbour sets, edge counts,
item placement — is derived from the segment decomposition, which is what
the paper means by "think continuously, act discretely".

Key theorem hooks exposed here:

* :meth:`DistanceHalvingNetwork.typed_edge_count` — the edge count of
  Theorem 2.1 (``≤ 3n − 1`` without ring edges, for ``Δ = 2``);
* :meth:`DistanceHalvingNetwork.max_out_degree` /
  :meth:`max_in_degree` — Theorem 2.2's smoothness-controlled bounds
  (``ρ + 4`` and ``⌈2ρ⌉ + 1``);
* :meth:`DistanceHalvingNetwork.join` / :meth:`leave` — Algorithm Join and
  the simple Leave rule, with O(1) item movement verified by tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..hashing.kwise import Key, PointHasher
from .continuous import ContinuousGraph
from .interval import Arc, Number, normalize
from .node import Server
from .segments import SegmentMap
from .snapshot import OpJournal

__all__ = ["DistanceHalvingNetwork"]

IdSelector = Callable[["DistanceHalvingNetwork", np.random.Generator], float]

#: (kind, float(point), index) — one entry per join/leave, in order.
MembershipOp = tuple


class MembershipLog(OpJournal):
    """Bounded journal of join/leave operations for incremental routers.

    The membership instance of the shared
    :class:`~repro.core.snapshot.OpJournal`: every membership change
    appends ``(kind, float(point), index)`` where ``index`` is the
    point's position in the sorted id vector at the time of the
    operation (the insertion index for a join, the pre-removal index
    for a leave).  A :class:`~repro.core.batch.BatchRouter` synced at
    version ``v`` replays the suffix ``ops_since(v)`` to patch its
    frozen arrays in O(affected region) instead of recompiling; a
    router that fell behind the cap gets ``None`` and must rebuild.
    """

    def record(self, kind: str, point: float, index: int) -> None:
        self.append((kind, float(point), int(index)))


class DistanceHalvingNetwork:
    """A dynamic Distance Halving DHT over ``[0, 1)``.

    Parameters
    ----------
    delta:
        Alphabet size of the underlying continuous De Bruijn graph
        (§2.3).  ``delta=2`` is the Distance Halving construction proper.
    with_ring:
        Keep the ring edges ``(V_i, V_{i+1})`` (§2.1).  The ablation
        experiment switches them off to measure their contribution.
    item_hash:
        The system-wide item-to-point hash ``h``; defaults to a fresh
        64-wise independent :class:`~repro.hashing.kwise.PointHasher`.
    """

    def __init__(
        self,
        delta: int = 2,
        with_ring: bool = True,
        item_hash: Optional[Callable[[Key], float]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.graph = ContinuousGraph(delta)
        self.with_ring = with_ring
        self.segments = SegmentMap()
        self.servers: Dict[float, Server] = {}
        self._rng = rng if rng is not None else np.random.default_rng()
        self.item_hash: Callable[[Key], float] = (
            item_hash if item_hash is not None else PointHasher(self._rng)
        )
        self.membership_log = MembershipLog()

    # ------------------------------------------------------------ properties
    @property
    def delta(self) -> int:
        return self.graph.delta

    @property
    def n(self) -> int:
        """Number of servers currently in the network."""
        return len(self.segments)

    def __len__(self) -> int:
        return self.n

    def points(self) -> Sequence[float]:
        """Sorted id points of all servers."""
        return self.segments.points

    def server_at(self, point: Number) -> Server:
        """The server whose id point is exactly ``point``."""
        return self.servers[normalize(point)]

    def owner_of(self, y: Number) -> Server:
        """The server covering point ``y`` (the lookup oracle)."""
        return self.servers[self.segments.cover_point(y)]

    def segment_of(self, point: Number) -> Arc:
        """The segment owned by the server with id ``point``."""
        return self.segments.segment_of(point)

    def smoothness(self) -> float:
        """``ρ`` of the current decomposition (Definition 1)."""
        return self.segments.smoothness()

    @property
    def membership_version(self) -> int:
        """Counter bumped by every :meth:`join` and :meth:`leave`.

        Compiled routers remember the version they snapshotted; a
        mismatch is how staleness is detected (and, for auto-refresh
        routers, how the incremental replay window is delimited).
        """
        return self.membership_log.version

    # ------------------------------------------------------------ membership
    def join(self, point: Optional[Number] = None, name: str = "",
             selector: Optional[IdSelector] = None) -> Server:
        """Algorithm Join (§2.1).

        Step 1 chooses the id point: either the caller supplies it, or a
        ``selector`` (one of the §4 balancing strategies) picks it.  Step
        2's lookup is the segment-map cover query.  Step 3 splits the
        covering segment and moves the data items that now belong to the
        newcomer.  Step 4 (informing neighbours) is implicit because
        neighbour sets are always derived from the live decomposition.
        Returns the new :class:`Server`.
        """
        if point is None:
            if selector is not None:
                point = selector(self, self._rng)
            else:
                point = float(self._rng.random())
        # Preserve exact (Fraction) coordinates; cast everything else to float.
        from fractions import Fraction

        p = normalize(point if isinstance(point, Fraction) else float(point))
        if self.n == 0:
            idx = self.segments.insert(p)
            srv = Server(point=p, name=name)
            self.servers[p] = srv
            self.membership_log.record("join", float(p), idx)
            return srv
        previous_owner = self.owner_of(p)
        idx = self.segments.insert(p)
        srv = Server(point=p, name=name)
        self.servers[p] = srv
        self.membership_log.record("join", float(p), idx)
        # Move items that fall inside the newcomer's segment (step 3).
        new_seg = self.segments.segment_of(p)
        moved = [k for k, (pos, _v) in previous_owner.store.items() if pos in new_seg]
        for k in moved:
            srv.store[k] = previous_owner.store.pop(k)
        return srv

    def leave(self, point: Number) -> None:
        """Simple Leave rule (§2.1): the ring predecessor absorbs the segment.

        The departing server hands its data items to the predecessor.
        """
        p = normalize(point)
        if p not in self.servers:
            raise KeyError(f"no server at {p!r}")
        if self.n == 1:
            del self.servers[p]
            idx = self.segments.remove(p)
            self.membership_log.record("leave", float(p), idx)
            return
        pred_point = self.segments.predecessor(p)
        pred = self.servers[pred_point]
        departing = self.servers.pop(p)
        pred.store.update(departing.store)
        idx = self.segments.remove(p)
        self.membership_log.record("leave", float(p), idx)

    def populate(self, n: int, selector: Optional[IdSelector] = None) -> None:
        """Convenience: join ``n`` servers using ``selector`` (default uniform)."""
        for _ in range(n):
            self.join(selector=selector)

    # -------------------------------------------------------------- topology
    def out_neighbor_points(self, point: Number) -> List[float]:
        """Servers covering the images ``f_i(s(V))`` — the forward edges."""
        seg = self.segments.segment_of(point)
        out: dict[float, None] = {}
        for img in self.graph.image_arcs(seg):
            for q in self.segments.covering_points(img):
                out.setdefault(q, None)
        return list(out)

    def in_neighbor_points(self, point: Number) -> List[float]:
        """Servers covering the preimage ``b(s(V))`` — the backward edges."""
        seg = self.segments.segment_of(point)
        out: dict[float, None] = {}
        for pre in self.graph.preimage_arcs(seg):
            for q in self.segments.covering_points(pre):
                out.setdefault(q, None)
        return list(out)

    def ring_neighbor_points(self, point: Number) -> List[float]:
        """Ring predecessor and successor (§2.1 adds these edges)."""
        if self.n <= 1:
            return []
        return [self.segments.predecessor(point), self.segments.successor(point)]

    def neighbor_points(self, point: Number) -> List[float]:
        """The full (undirected) neighbour set of a server.

        Union of forward images, backward preimage, and — when enabled —
        the two ring neighbours.  The server itself is excluded.
        """
        p = normalize(point)
        out: dict[float, None] = {}
        for q in self.out_neighbor_points(p):
            out.setdefault(q, None)
        for q in self.in_neighbor_points(p):
            out.setdefault(q, None)
        if self.with_ring:
            for q in self.ring_neighbor_points(p):
                out.setdefault(q, None)
        out.pop(p, None)
        return list(out)

    def are_neighbors(self, p: Number, q: Number) -> bool:
        """True when ``q`` is in ``p``'s neighbour set (or ``p == q``)."""
        p, q = normalize(p), normalize(q)
        if p == q:
            return True
        return q in set(self.neighbor_points(p))

    def degree(self, point: Number) -> int:
        """Undirected degree of a server (with ring edges if enabled)."""
        return len(self.neighbor_points(point))

    # ----------------------------------------------------- theorem quantities
    def edge_count(self, include_ring: bool = False) -> int:
        """Number of distinct edges of ``G_x`` in the sense of Theorem 2.1.

        An (undirected) edge ``{V_i, V_j}`` exists when some continuous
        edge ``(y, z)`` has ``y ∈ s(x_i)`` and ``z ∈ s(x_j)``; self-loops
        count once.  Theorem 2.1: at most ``3n − 1`` without ring edges
        for ``Δ = 2`` (each insertion creates at most one new left, right
        and backward edge).  This is what makes the *average* degree at
        most 6 for every id vector.
        """
        pairs: set = set()
        for p in self.segments:
            seg = self.segments.segment_of(p)
            for img in self.graph.image_arcs(seg):
                for q in self.segments.covering_points(img):
                    pairs.add((p, q) if p <= q else (q, p))
        if include_ring and self.n > 1:
            for p in self.segments:
                q = self.segments.successor(p)
                pairs.add((p, q) if p <= q else (q, p))
        return len(pairs)

    def typed_edge_count(self) -> int:
        """Directed map-multiplicity edge count ``Σ_U Σ_i |covers(f_i(s(U)))|``.

        A finer diagnostic than :meth:`edge_count`: it equals the sum of
        out-degrees counted per edge map, i.e. the number of routing-table
        entries the network maintains.
        """
        total = 0
        for p in self.segments:
            seg = self.segments.segment_of(p)
            for per_digit in self.graph.image_arcs_by_digit(seg):
                covered: set = set()
                for img in per_digit:
                    covered.update(self.segments.covering(img))
                total += len(covered)
        return total

    def max_out_degree(self) -> int:
        """``max_U |covers(∪_i f_i(s(U)))|`` — Theorem 2.2 bounds it by ρ+4."""
        best = 0
        for p in self.segments:
            best = max(best, len(self.out_neighbor_points(p)))
        return best

    def max_in_degree(self) -> int:
        """``max_V |covers(b(s(V)))|`` — Theorem 2.2 bounds it by ⌈2ρ⌉+1."""
        best = 0
        for p in self.segments:
            best = max(best, len(self.in_neighbor_points(p)))
        return best

    def average_degree(self) -> float:
        """Mean undirected degree; Theorem 2.1 implies ≤ 6 + ring for Δ=2."""
        if self.n == 0:
            return 0.0
        return sum(self.degree(p) for p in self.segments) / self.n

    # ------------------------------------------------------------ data items
    def store_item(self, key: Key, value: Any) -> Server:
        """Place an item on the server covering ``h(key)`` (§2.1).

        The stored record keeps the hashed position so joins can migrate
        items without rehashing.
        """
        pos = self.item_hash(key)
        owner = self.owner_of(pos)
        owner.store[key] = (pos, value)
        return owner

    def get_item(self, key: Key) -> Any:
        """Oracle retrieval (no routing) — used to validate lookup paths."""
        pos = self.item_hash(key)
        owner = self.owner_of(pos)
        rec = owner.store.get(key)
        if rec is None:
            raise KeyError(key)
        return rec[1]

    def item_owner(self, key: Key) -> Server:
        """The server responsible for ``key``'s hash position."""
        return self.owner_of(self.item_hash(key))

    # ------------------------------------------------------------- exports
    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style ``(indptr, indices)`` of the undirected neighbour sets.

        Row ``i`` (servers in sorted id order) holds the sorted indices of
        ``neighbor_points(x_i)`` — forward, backward and (when enabled)
        ring neighbours, self excluded.  This is the routing table the
        batch engine consults for the Distance Halving lookup's
        "covered by a neighbour" test.
        """
        pts = list(self.segments)
        index = {p: i for i, p in enumerate(pts)}
        indptr = np.zeros(len(pts) + 1, dtype=np.int64)
        indices: List[int] = []
        for i, p in enumerate(pts):
            row = sorted(index[q] for q in self.neighbor_points(p))
            indices.extend(row)
            indptr[i + 1] = len(indices)
        return indptr, np.asarray(indices, dtype=np.int64)

    def compile_router(self, with_adjacency: bool = False):
        """Freeze the current decomposition into a vectorised BatchRouter.

        The router is a snapshot: after a join or leave it refuses to
        route (with an actionable error) until recompiled.  Use
        :meth:`router` for a handle that follows churn automatically.
        Pass ``with_adjacency=True`` when you will route with
        :meth:`~repro.core.batch.BatchRouter.batch_dh_lookup` (the fast
        path needs no neighbour table).
        """
        from .batch import BatchRouter

        return BatchRouter(self, build_adjacency=with_adjacency)

    def router(self, auto_refresh: bool = True, with_adjacency: bool = False,
               churn_budget: Optional[int] = None):
        """A BatchRouter handle that survives joins and leaves.

        With ``auto_refresh=True`` (the default) every batch call first
        syncs the router to :attr:`membership_version`: pending ops are
        replayed from the membership log with O(affected-region) patches
        to the sorted point/segment arrays and the touched adjacency
        rows, falling back to a full recompile only when more than
        ``churn_budget`` ops are pending (default ``max(16, n // 16)``)
        or the log window was exceeded.  With ``auto_refresh=False``
        this is exactly :meth:`compile_router`.
        """
        from .batch import BatchRouter

        return BatchRouter(self, build_adjacency=with_adjacency,
                           auto_refresh=auto_refresh,
                           churn_budget=churn_budget)

    def to_networkx(self, include_ring: Optional[bool] = None):
        """Undirected NetworkX graph of the current topology."""
        import networkx as nx

        ring = self.with_ring if include_ring is None else include_ring
        g = nx.Graph()
        g.add_nodes_from(self.segments)
        for p in self.segments:
            for q in self.out_neighbor_points(p):
                if p != q:
                    g.add_edge(p, q)
            if ring and self.n > 1:
                g.add_edge(p, self.segments.successor(p))
        return g

    def check_invariants(self) -> None:
        """Structural sanity: segment map is consistent with the server dict."""
        self.segments.check_invariants()
        assert set(self.servers) == set(self.segments), "server/point mismatch"
        for p, srv in self.servers.items():
            seg = self.segments.segment_of(p)
            for key, (pos, _v) in srv.store.items():
                assert pos in seg, f"item {key!r} at {pos} outside {seg} of {p}"
