"""Dynamic decomposition of ``[0, 1)`` into server segments (paper §2.1).

``n`` distinct points ``x_0 < x_1 < … < x_{n-1}`` divide the ring into
``n`` half-open segments; server ``V_i`` is *associated* with
``s(x_i) = [x_i, x_{i+1})`` and the last server owns the wrapping segment
``[x_{n-1}, 1) ∪ [0, x_0)``.  A point ``y ∈ s(x_i)`` is *covered* by
``V_i``.

:class:`SegmentMap` maintains this decomposition under joins (point
insertions split a segment) and leaves (removals merge a segment into its
ring predecessor), and answers the queries every protocol in the paper
needs:

* ``cover(y)``          — which segment covers a point (binary search);
* ``covering(arc)``     — all segments intersecting an arc (used to build
  the discrete graph's edges from continuous edges);
* ``smoothness()``      — ``ρ(x) = max_i |s(x_i)| / min_j |s(x_j)|``
  (Definition 1), the parameter controlling degree, path length and
  congestion throughout the paper.

The map is deliberately simple — a sorted list with ``bisect`` — because
network sizes in the experiments are ≤ 2^14 and the guide's advice is
"make it work, make it right, then profile".  Bulk analytics (lengths,
smoothness) are exposed as NumPy arrays for vectorised use by the
experiment harness.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Iterator, Sequence

import numpy as np

from .interval import Arc, Number, normalize

__all__ = ["SegmentMap", "cover_indices", "fold_unit", "normalize_array"]


def fold_unit(x: np.ndarray) -> np.ndarray:
    """In-place ``1.0 → 0.0`` fold on an array of ring points.

    Float rounding can land a value that is < 1 in exact arithmetic on
    exactly 1.0; :func:`repro.core.interval.normalize` folds that case,
    and every vectorised path must apply the same fold to stay
    bit-identical with the scalar engine.
    """
    x[x == 1.0] = 0.0
    return x


def normalize_array(ys) -> np.ndarray:
    """Vectorised :func:`repro.core.interval.normalize` (float64, 1-d).

    Always returns a fresh array (``np.mod`` copies), so in-place edits
    by callers never alias the input.
    """
    return fold_unit(np.atleast_1d(np.mod(np.asarray(ys, dtype=np.float64), 1.0)))


def cover_indices(points: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Vectorised cover query over a sorted point vector.

    ``ys`` must already lie in ``[0, 1)``.  Matches :meth:`SegmentMap.cover`
    exactly: greatest ``x_i <= y``, wrapping below ``x_0`` to the last
    server.  Shared by :meth:`SegmentMap.cover_array` and the batch
    engine's :meth:`~repro.core.batch.BatchRouter.cover` so the two can
    never drift.
    """
    idx = np.searchsorted(points, ys, side="right") - 1
    idx[idx < 0] = len(points) - 1
    return idx


class SegmentMap:
    """Sorted set of points decomposing the unit ring into segments."""

    def __init__(self, points: Iterable[Number] = ()) -> None:
        pts = sorted(normalize(p) for p in points)
        for a, b in zip(pts, pts[1:]):
            if a == b:
                raise ValueError(f"duplicate point {a!r}")
        self._points: list[Number] = pts

    # ------------------------------------------------------------- basic ops
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Number]:
        return iter(self._points)

    def __contains__(self, point: Number) -> bool:
        i = bisect_left(self._points, normalize(point))
        return i < len(self._points) and self._points[i] == normalize(point)

    @property
    def points(self) -> Sequence[Number]:
        """The sorted point vector ``x`` (read-only view)."""
        return tuple(self._points)

    def as_array(self) -> np.ndarray:
        """Points as a float64 NumPy array (for vectorised analytics)."""
        return np.asarray([float(p) for p in self._points], dtype=np.float64)

    def bounds_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-segment ``(starts, ends)`` as float64 arrays, in ring order.

        Segment ``i`` is ``[starts[i], ends[i])``; the last entry wraps
        (``ends[-1] == starts[0]``).  With a single point both arrays are
        equal — the full-ring segment, matching :class:`Arc`'s convention.
        Used by the batch-lookup engine for vectorised membership tests.
        """
        pts = self.as_array()
        if len(pts) == 0:
            raise LookupError("empty segment map has no segments")
        return pts, np.roll(pts, -1)

    def midpoints_array(self) -> np.ndarray:
        """Per-segment midpoints as a float64 array.

        Computed through :attr:`Arc.midpoint` segment by segment so the
        values are bit-identical to what the scalar lookup engine sees —
        the batch fast lookup derives its approach digits from these.
        """
        n = len(self._points)
        if n == 0:
            raise LookupError("empty segment map has no segments")
        return np.asarray(
            [float(self.segment(i).midpoint) for i in range(n)], dtype=np.float64
        )

    def cover_array(self, ys) -> np.ndarray:
        """Vectorised :meth:`cover`: one ``np.searchsorted`` for a batch.

        ``ys`` may be any array-like of points; values are normalised
        into ``[0, 1)`` first.  Returns an int array of segment indices
        equal element-wise to ``[self.cover(y) for y in ys]``.
        """
        if not self._points:
            raise LookupError("empty segment map covers nothing")
        return cover_indices(self.as_array(), normalize_array(ys))

    def insert(self, point: Number) -> int:
        """Insert a new point (a server join); returns its index.

        Splits the segment that covered ``point`` exactly as step 3 of
        Algorithm Join: the new server takes ``[point, old_end)``.
        Duplicate points are rejected — two servers may not share an id.
        """
        p = normalize(point)
        if p in self:
            raise ValueError(f"point {p!r} already present")
        insort(self._points, p)
        return bisect_left(self._points, p)

    def remove(self, point: Number) -> int:
        """Remove a point (a server leave); returns its former index.

        The ring predecessor implicitly absorbs the vacated segment —
        the paper's simplest Leave rule (§2.1).  The returned index is
        what incremental router maintenance needs to patch its sorted
        arrays without a search.
        """
        p = normalize(point)
        i = bisect_left(self._points, p)
        if i >= len(self._points) or self._points[i] != p:
            raise KeyError(f"point {p!r} not present")
        del self._points[i]
        return i

    # --------------------------------------------------------------- queries
    def point_at(self, i: int) -> Number:
        """The ``i``-th point in sorted order (O(1), exact coordinates)."""
        return self._points[i]

    def index_of(self, point: Number) -> int:
        """Index of an existing point; raises ``KeyError`` if absent."""
        p = normalize(point)
        i = bisect_left(self._points, p)
        if i >= len(self._points) or self._points[i] != p:
            raise KeyError(f"point {p!r} not present")
        return i

    def cover(self, y: Number) -> int:
        """Index ``i`` of the segment ``s(x_i)`` covering point ``y``.

        The covering server is the one with the greatest ``x_i <= y``;
        points below ``x_0`` wrap to the last server's segment.
        """
        if not self._points:
            raise LookupError("empty segment map covers nothing")
        i = bisect_right(self._points, normalize(y)) - 1
        return i if i >= 0 else len(self._points) - 1

    def cover_point(self, y: Number) -> Number:
        """The point ``x_i`` of the server covering ``y``."""
        return self._points[self.cover(y)]

    def segment(self, i: int) -> Arc:
        """The arc ``s(x_i) = [x_i, x_{i+1 mod n})``."""
        n = len(self._points)
        if n == 0:
            raise LookupError("empty segment map has no segments")
        if n == 1:
            return Arc(self._points[0], self._points[0])
        return Arc(self._points[i % n], self._points[(i + 1) % n])

    def segment_of(self, point: Number) -> Arc:
        """The segment owned by the server whose id point is ``point``."""
        return self.segment(self.index_of(point))

    def segment_length(self, i: int) -> Number:
        return self.segment(i).length

    def predecessor(self, point: Number) -> Number:
        """Ring predecessor of an existing point."""
        i = self.index_of(point)
        return self._points[(i - 1) % len(self._points)]

    def successor(self, point: Number) -> Number:
        """Ring successor of an existing point."""
        i = self.index_of(point)
        return self._points[(i + 1) % len(self._points)]

    def covering(self, arc: Arc) -> list[int]:
        """Indices of every segment intersecting ``arc`` (in ring order).

        This is the discretization query of §1.2: two cells are connected
        when they contain adjacent points of the continuous graph, so a
        server covering ``arc`` must link to every index returned here
        when ``arc`` is the image of its segment under an edge map.
        """
        n = len(self._points)
        if n == 0:
            raise LookupError("empty segment map covers nothing")
        if n == 1:
            return [0]
        seen: dict[int, None] = {}
        for a, b in arc.pieces():
            if b <= a:
                continue
            first = self.cover(a)
            seen.setdefault(first, None)
            # every point strictly inside (a, b) starts another intersecting segment
            lo = bisect_right(self._points, a)
            hi = bisect_left(self._points, b)
            for j in range(lo, hi):
                seen.setdefault(j, None)
        return list(seen.keys())

    def covering_points(self, arc: Arc) -> list[Number]:
        """Id points of the servers whose segments intersect ``arc``."""
        return [self._points[i] for i in self.covering(arc)]

    # ------------------------------------------------------------- analytics
    @staticmethod
    def lengths_from_array(pts: np.ndarray) -> np.ndarray:
        """Segment lengths of a frozen sorted point array (sums to 1).

        Shared with snapshot holders of the sorted column (the bucket
        balancer) so their analytics use the exact IEEE-754 ops of
        :meth:`lengths` — bit-parity by construction, not by test.
        """
        if len(pts) == 0:
            return np.zeros(0)
        if len(pts) == 1:
            return np.ones(1)
        diffs = np.diff(pts)
        wrap = 1.0 - pts[-1] + pts[0]
        return np.append(diffs, wrap)

    def lengths(self) -> np.ndarray:
        """All segment lengths as a float64 array (sums to 1)."""
        return self.lengths_from_array(self.as_array())

    def smoothness(self) -> float:
        """``ρ(x) = max_i |s(x_i)| / min_j |s(x_j)|`` (Definition 1)."""
        lens = self.lengths()
        if len(lens) == 0:
            raise LookupError("empty segment map has no smoothness")
        mn = lens.min()
        if mn <= 0:
            return math.inf
        return float(lens.max() / mn)

    def min_segment_length(self) -> float:
        lens = self.lengths()
        if len(lens) == 0:
            raise LookupError("empty segment map")
        return float(lens.min())

    def max_segment_length(self) -> float:
        lens = self.lengths()
        if len(lens) == 0:
            raise LookupError("empty segment map")
        return float(lens.max())

    def is_smooth(self, bound: float) -> bool:
        """True when ``ρ(x) <= bound`` — the paper's "smooth" predicate."""
        return self.smoothness() <= bound

    def check_invariants(self) -> None:
        """Assert structural invariants (sortedness, lengths summing to 1)."""
        pts = self._points
        assert all(a < b for a, b in zip(pts, pts[1:])), "points not strictly sorted"
        assert all(0 <= p < 1 for p in pts), "point outside [0,1)"
        if pts:
            total = sum(self.segment(i).length for i in range(len(pts)))
            assert abs(float(total) - 1.0) < 1e-9, f"segment lengths sum to {total}"
