"""Fault-tolerant lookups on the overlapping DHT (paper §6.3).

Both algorithms emulate the *canonical path* — the Claim 2.4 approach
walk between the source's segment and the target — through the
overlapping cover sets:

* **Simple Lookup** (Theorem 6.3): forward through *one* randomly chosen
  alive cover of each path point; ``log n + O(1)`` time and messages;
  under random fail-stop every surviving server still reaches every item
  (Theorem 6.4) because w.h.p. every point keeps an alive cover
  (Claim 6.5).
* **False-message-resistant Lookup** (Theorem 6.6): forward through
  *all* covers of each path point, each server accepting only the
  majority of what the previous cover set sent — ``log n`` parallel
  time, ``O(log³ n)`` messages, and the answer survives Byzantine
  payload corruption as long as every point is covered by an honest
  majority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.continuous import Digits
from ..core.interval import normalize
from ..core.lookup import MAX_WALK_STEPS
from ..hashing.kwise import Key
from .models import FaultPlan
from .overlap import OverlappingDHNetwork

__all__ = ["FTLookupResult", "canonical_path", "simple_lookup", "resistant_lookup"]


@dataclass
class FTLookupResult:
    """Outcome of a fault-tolerant lookup."""

    success: bool
    value: object = None
    path_points: List[float] = field(default_factory=list)   # continuous path
    servers: List[float] = field(default_factory=list)       # one per hop (simple)
    messages: int = 0
    parallel_time: int = 0


def canonical_path(
    net: OverlappingDHNetwork, source: float, target: float
) -> List[float]:
    """The §6.3 canonical path: continuous points from ``s(V)`` to ``y``.

    Claim 2.4 instantiated with ``z`` the source segment's midpoint: the
    walk point enters the source's segment after ``t ≈ log n`` steps, and
    the backward traversal visits ``w(σ(z)_{t-k}, y)`` down to ``y``.
    """
    g = net.graph
    y = normalize(float(target))
    a, b = net.segment_of(source)
    seg_len = (b - a) % 1.0
    z = (a + seg_len / 2.0) % 1.0

    def in_segment(p: float) -> bool:
        return (p - a) % 1.0 <= seg_len

    t = 0
    digits: Digits = ()
    while t <= MAX_WALK_STEPS:
        digits = g.approach_digits(z, t)
        if in_segment(g.walk(digits, y)):
            break
        t += 1
    else:  # pragma: no cover
        raise RuntimeError("canonical path failed to converge")
    return [g.walk(digits[:j], y) for j in range(t, -1, -1)]


def simple_lookup(
    net: OverlappingDHNetwork,
    source: float,
    key: Key,
    rng: Optional[np.random.Generator] = None,
    plan: Optional[FaultPlan] = None,
    *,
    target: Optional[float] = None,
    choices: Optional[Sequence[float]] = None,
    oracle=None,
    policy: str = "uniform",
    temperature: float = 1.0,
) -> FTLookupResult:
    """Theorem 6.3's Simple Lookup under an optional fault plan.

    Each hop picks one random *alive* server among the Θ(log n) covers of
    the next canonical point.  Fails only if some path point lost all its
    covers — which Claim 6.5 says happens with vanishing probability for
    small fail-stop ``p``.

    ``target`` overrides the item-hash position (the batch sweeps route
    raw ring points).  ``choices`` fixes the per-hop random selection:
    hop ``k`` picks alive cover ``⌊choices[k]·|alive|⌋`` instead of
    drawing from ``rng`` — with the same uniforms the scalar walk is
    bit-identical to :meth:`repro.faults.batch_ft.FTBatchEngine
    .batch_simple_lookup`, which is how the parity cross-checks replay
    sub-workloads.  One of ``rng`` / ``choices`` is required.

    ``oracle``/``policy``/``temperature`` mirror the batch engine's
    cost-aware mode: with a :class:`~repro.peer.itracker.CostOracle` and
    ``policy="greedy"`` or ``"weighted"`` the pick goes through
    :func:`~repro.peer.policy.select_index` over the alive covers' edge
    costs — bit-identical to the batch pick for the same uniforms
    ("greedy" needs neither ``rng`` nor ``choices``).
    """
    plan = plan if plan is not None else FaultPlan()
    cost_aware = oracle is not None and policy != "uniform"
    if policy != "uniform":
        from ..peer.policy import check_policy
        check_policy(policy)
        if oracle is None:
            raise ValueError(f"cost policy {policy!r} needs a CostOracle")
    if rng is None and choices is None and not (
            cost_aware and policy == "greedy"):
        raise ValueError("simple_lookup needs an rng or explicit choices")
    if target is None:
        target = net.item_hash(key)
    path = canonical_path(net, source, target)
    servers: List[float] = [source]
    messages = 0
    for hop, point in enumerate(path[1:]):
        alive = net.covers(point, alive=None)
        alive = [s for s in alive if plan.is_alive(s)]
        if not alive:
            return FTLookupResult(False, path_points=path, servers=servers,
                                  messages=messages, parallel_time=len(servers) - 1)
        if cost_aware:
            from ..peer.policy import select_index
            if choices is not None:
                if hop >= len(choices):
                    raise ValueError(
                        "supplied choices exhausted before lookup finished")
                u_val = float(choices[hop])
            elif rng is not None:
                u_val = float(rng.random())
            else:
                u_val = None
            costs = oracle.cost_between(servers[-1], alive)
            pick = select_index(costs, u_val, policy, temperature)
        elif choices is not None:
            if hop >= len(choices):
                raise ValueError("supplied choices exhausted before lookup finished")
            pick = min(int(choices[hop] * len(alive)), len(alive) - 1)
        else:
            pick = int(rng.integers(len(alive)))
        nxt = alive[pick]
        if nxt != servers[-1]:
            messages += 1
        servers.append(nxt)
    holder = servers[-1]
    value = plan.answer_of(holder, ("VALUE", key))
    ok = plan.is_alive(holder) and value == ("VALUE", key)
    return FTLookupResult(ok, value=value, path_points=path, servers=servers,
                          messages=messages, parallel_time=len(path) - 1)


def resistant_lookup(
    net: OverlappingDHNetwork,
    source: float,
    key: Key,
    plan: Optional[FaultPlan] = None,
    *,
    target: Optional[float] = None,
) -> FTLookupResult:
    """Theorem 6.6's false-message-resistant lookup.

    The request floods from the cover set of each canonical point to the
    next; each server forwards only the value received from a majority of
    the previous cover set.  At the target, the requester takes the
    majority of the replica group's answers.

    Returns message complexity (Σ |S_k|·|S_{k+1}| over alive pairs — the
    O(log³ n) of the theorem) and parallel time (the number of relay
    levels the flood actually traversed before answering or dying).
    ``target`` overrides the item-hash position, as in
    :func:`simple_lookup`.
    """
    plan = plan if plan is not None else FaultPlan()
    if target is None:
        target = net.item_hash(key)
    path = canonical_path(net, source, target)
    true_value = ("VALUE", key)

    # The value travels from the item holders backwards to the requester
    # in the paper's presentation; equivalently (and how we simulate it)
    # the request floods forward and the item's covers answer: what must
    # survive majority filtering is the *payload* at every relay layer.
    # Relay layers: cover sets of each canonical point from the target end
    # back to the source.
    layers: List[List[float]] = []
    for point in reversed(path):  # start at y's covers, end at source's
        layers.append(net.covers(point))
    messages = 0
    # layer 0: the replica group answers (liars corrupt their copy)
    current_values: Dict[float, object] = {}
    for s in layers[0]:
        if plan.is_alive(s):
            current_values[s] = plan.answer_of(s, true_value)
    for k in range(1, len(layers)):
        nxt_values: Dict[float, object] = {}
        senders = [s for s in layers[k - 1] if plan.is_alive(s) and s in current_values]
        for r in layers[k]:
            if not plan.is_alive(r):
                continue
            received = []
            for s in senders:
                messages += 1
                # a lying relay corrupts whatever it forwards
                received.append(plan.answer_of(s, current_values[s]))
            if not received:
                continue
            # majority filter (Theorem 6.6: forward only the majority value)
            counts: Dict[object, int] = {}
            for v in received:
                counts[v] = counts.get(v, 0) + 1
            best, cnt = max(counts.items(), key=lambda kv: kv[1])
            if cnt * 2 > len(received):
                nxt_values[r] = best
        current_values = nxt_values
        if not current_values:
            # died after k relay levels — report the levels actually
            # traversed, not the full requested walk length
            return FTLookupResult(False, path_points=path, messages=messages,
                                  parallel_time=k)
    if not current_values:
        # zero-hop path (t = 0) whose replica group is entirely dead
        return FTLookupResult(False, path_points=path, messages=messages,
                              parallel_time=0)
    counts: Dict[object, int] = {}
    for v in current_values.values():
        counts[v] = counts.get(v, 0) + 1
    best, cnt = max(counts.items(), key=lambda kv: kv[1])
    ok = best == true_value and cnt * 2 > len(current_values)
    return FTLookupResult(ok, value=best, path_points=path, messages=messages,
                          parallel_time=len(layers) - 1)
