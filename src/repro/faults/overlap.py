"""The Overlapping Distance Halving DHT (paper §6.2).

Same continuous graph as §2, different discretization: server ``V_i``
covers the *overlapping* segment ``[x_i, y_i]`` where ``y_i`` is chosen
so the segment contains ``α_i ≈ log n`` other id points — ``α_i`` comes
from the predecessor-gap estimator (Lemma 6.2), so every server sizes
its segment from purely local information.

Consequences (verified by the tests / experiment E13):

* every point of ``I`` is covered by ``Θ(log n)`` servers, so every data
  item lives in ``Θ(log n)`` replicas (the replica group is a clique —
  the erasure-coding hook the paper mentions);
* degree ``Θ(log n)`` — the §6 intro argues a logarithmic degree is
  *necessary* for resilience against constant-probability faults;
* the canonical continuous path of any lookup can be emulated through
  *any* alive covers of its points, which is what the two §6.3 lookup
  algorithms exploit.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.continuous import ContinuousGraph
from ..core.interval import normalize
from ..core.segments import cover_indices, normalize_array
from ..core.snapshot import ColumnarSnapshot
from ..hashing.kwise import Key, PointHasher

__all__ = ["OverlappingDHNetwork"]


class OverlappingDHNetwork(ColumnarSnapshot):
    """Static overlapping-segment Distance Halving network.

    Besides the scalar dict-based API, the constructor freezes the
    decomposition into **array-backed cover tables** (sorted id points,
    per-server overlap length ``α_i``, segment length and midpoint) so
    the batch fault-tolerance engine (:mod:`repro.faults.batch_ft`) can
    answer "all covers of each of these B points" with one
    ``searchsorted`` plus a ``(max α, B)`` gather — no per-point scan.

    The tables are the *static* instance of the shared
    :class:`~repro.core.snapshot.ColumnarSnapshot` layer: membership
    never changes after construction, so the snapshot is journal-less
    and can never go stale — but it shares the column registry the
    sharded execution backend (:mod:`repro.core.shard`) exports into
    shared memory.
    """

    #: The aligned cover-table arrays, registered with the snapshot layer
    #: (``max_back`` is a derived scalar, recomputed by every rebuild).
    COLUMNS = ("points_array", "alpha_array", "seg_len_array", "mid_array")

    def __init__(
        self,
        n: int,
        rng: np.random.Generator,
        coverage_factor: float = 1.0,
        item_hash: Optional[PointHasher] = None,
    ):
        if n < 8:
            raise ValueError("need at least eight servers")
        self.graph = ContinuousGraph(2)
        self.points: List[float] = sorted(float(p) for p in rng.random(n))
        self.coverage_factor = float(coverage_factor)
        self.item_hash = item_hash if item_hash is not None else PointHasher(rng)
        # α_i: local log-n estimate from the predecessor gap (§6.2), scaled
        self.alpha: Dict[float, int] = {}
        self.end: Dict[float, float] = {}
        for i, x in enumerate(self.points):
            gap = (x - self.points[i - 1]) % 1.0
            est = max(1, round(math.log2(1.0 / gap))) if gap > 0 else 1
            a = max(2, int(round(self.coverage_factor * est)))
            a = min(a, n - 2)
            self.alpha[x] = a
            self.end[x] = self.points[(i + a) % n]
        self.store: Dict[Key, Set[float]] = {}
        # journal-less: static membership, so the snapshot never goes stale
        super().__init__(journal=None)

    def _rebuild(self) -> None:
        """Freeze the array-backed cover tables from the scalar dicts."""
        n = len(self.points)
        #: sorted id points, aligned with every per-server array below
        self.points_array = np.asarray(self.points, dtype=np.float64)
        #: overlap parameter α_i per server (how many successors it covers)
        self.alpha_array = np.array(
            [self.alpha[x] for x in self.points], dtype=np.int64)
        #: closed-segment length (end_i - x_i) mod 1, same float ops as
        #: ``covers_point`` so the vectorized test cannot drift from it
        self.seg_len_array = np.mod(
            np.array([self.end[x] for x in self.points], dtype=np.float64)
            - self.points_array, 1.0)
        #: §6.3 canonical-path start z_i = segment midpoint, precomputed
        #: with the exact float ops of ``canonical_path``
        self.mid_array = np.mod(
            self.points_array + self.seg_len_array / 2.0, 1.0)
        #: how many ring predecessors a cover scan must visit (max α + 2,
        #: the same back-window the scalar ``covers`` walks)
        self.max_back = int(min(n, self.alpha_array.max() + 2))

    # ------------------------------------------------------------- geometry
    @property
    def n(self) -> int:
        return len(self.points)

    def segment_of(self, x: float) -> Tuple[float, float]:
        """The closed overlapping segment ``[x_i, y_i]`` (may wrap)."""
        return (x, self.end[x])

    def covers_point(self, x: float, y: float) -> bool:
        """Does server ``x`` cover point ``y``? (closed segment, cyclic)."""
        a, b = x, self.end[x]
        return (y - a) % 1.0 <= (b - a) % 1.0

    def covers(self, y: float, alive: Optional[Set[float]] = None) -> List[float]:
        """All servers covering ``y`` (optionally restricted to alive ones).

        A cover's start point is one of the ~``max α`` predecessors of
        ``y``, so the scan is logarithmic.
        """
        y = normalize(float(y))
        n = self.n
        i = bisect_right(self.points, y) - 1
        out = []
        max_back = min(n, max(self.alpha.values()) + 2)
        for k in range(max_back):
            x = self.points[(i - k) % n]
            if self.covers_point(x, y):
                if alive is None or x in alive:
                    out.append(x)
        return out

    def cover_table(self, ys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized cover query for a whole batch of points.

        Returns ``(cand, mask)``: ``cand`` is a ``(max_back, B)`` int64
        matrix of candidate server indices — row ``k`` holds the ``k``-th
        ring predecessor of each query point, the exact scan order of the
        scalar :meth:`covers` — and ``mask`` flags the candidates that
        really cover their point (closed cyclic segment test, same float
        ops as :meth:`covers_point`).  ``ys`` must already lie in
        ``[0, 1)``; use :func:`~repro.core.segments.normalize_array`
        first for raw ring points.
        """
        ys = np.asarray(ys, dtype=np.float64)
        i = cover_indices(self.points_array, ys)
        k = np.arange(self.max_back, dtype=np.int64)
        cand = (i[None, :] - k[:, None]) % self.n
        mask = (np.mod(ys[None, :] - self.points_array[cand], 1.0)
                <= self.seg_len_array[cand])
        return cand, mask

    def coverage_counts(self, probes: np.ndarray) -> np.ndarray:
        """Number of covers of each probe point (Θ(log n) whp)."""
        _cand, mask = self.cover_table(normalize_array(probes))
        return mask.sum(axis=0)

    # ------------------------------------------------------------- topology
    def neighbors(self, x: float) -> List[float]:
        """Overlap edges plus continuous-graph edges (§6.2's edge set)."""
        out: Dict[float, None] = {}
        a, b = x, self.end[x]
        seg_len = (b - a) % 1.0
        # overlapping servers: those whose segment intersects [a, b]
        for y in self.covers(a) + self.covers(b):
            out.setdefault(y, None)
        i = bisect_left(self.points, x)
        k = i
        while True:
            k = (k + 1) % self.n
            p = self.points[k]
            if (p - a) % 1.0 <= seg_len:
                out.setdefault(p, None)
            else:
                break
            if k == i:
                break
        # continuous edges: covers of the images and preimage of [a, b]
        for probe in self._image_probes(a, seg_len):
            for y in self.covers(probe):
                out.setdefault(y, None)
        out.pop(x, None)
        return list(out)

    def _image_probes(self, a: float, seg_len: float) -> List[float]:
        """Sample points of l/r/b images of the segment (edge probes)."""
        ts = np.linspace(0.0, seg_len, 5)
        pts = [(a + t) % 1.0 for t in ts]
        probes: List[float] = []
        for p in pts:
            probes.append(p / 2.0)
            probes.append(p / 2.0 + 0.5)
            probes.append((2.0 * p) % 1.0)
        return probes

    def degree(self, x: float) -> int:
        return len(self.neighbors(x))

    def max_degree(self) -> int:
        return max(self.degree(x) for x in self.points)

    # ------------------------------------------------------------ data items
    def store_item(self, key: Key, value) -> List[float]:
        """Replicate an item to every server covering its hash point."""
        pos = self.item_hash(key)
        owners = self.covers(pos)
        self.store[key] = set(owners)
        return owners

    def replica_group(self, key: Key) -> List[float]:
        """Servers holding the item — pairwise connected (a clique, §6.2)."""
        return self.covers(self.item_hash(key))
