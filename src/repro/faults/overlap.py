"""The Overlapping Distance Halving DHT (paper §6.2).

Same continuous graph as §2, different discretization: server ``V_i``
covers the *overlapping* segment ``[x_i, y_i]`` where ``y_i`` is chosen
so the segment contains ``α_i ≈ log n`` other id points — ``α_i`` comes
from the predecessor-gap estimator (Lemma 6.2), so every server sizes
its segment from purely local information.

Consequences (verified by the tests / experiment E13):

* every point of ``I`` is covered by ``Θ(log n)`` servers, so every data
  item lives in ``Θ(log n)`` replicas (the replica group is a clique —
  the erasure-coding hook the paper mentions);
* degree ``Θ(log n)`` — the §6 intro argues a logarithmic degree is
  *necessary* for resilience against constant-probability faults;
* the canonical continuous path of any lookup can be emulated through
  *any* alive covers of its points, which is what the two §6.3 lookup
  algorithms exploit.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.continuous import ContinuousGraph
from ..core.interval import normalize
from ..hashing.kwise import Key, PointHasher

__all__ = ["OverlappingDHNetwork"]


class OverlappingDHNetwork:
    """Static overlapping-segment Distance Halving network."""

    def __init__(
        self,
        n: int,
        rng: np.random.Generator,
        coverage_factor: float = 1.0,
        item_hash: Optional[PointHasher] = None,
    ):
        if n < 8:
            raise ValueError("need at least eight servers")
        self.graph = ContinuousGraph(2)
        self.points: List[float] = sorted(float(p) for p in rng.random(n))
        self.coverage_factor = float(coverage_factor)
        self.item_hash = item_hash if item_hash is not None else PointHasher(rng)
        # α_i: local log-n estimate from the predecessor gap (§6.2), scaled
        self.alpha: Dict[float, int] = {}
        self.end: Dict[float, float] = {}
        for i, x in enumerate(self.points):
            gap = (x - self.points[i - 1]) % 1.0
            est = max(1, round(math.log2(1.0 / gap))) if gap > 0 else 1
            a = max(2, int(round(self.coverage_factor * est)))
            a = min(a, n - 2)
            self.alpha[x] = a
            self.end[x] = self.points[(i + a) % n]
        self.store: Dict[Key, Set[float]] = {}

    # ------------------------------------------------------------- geometry
    @property
    def n(self) -> int:
        return len(self.points)

    def segment_of(self, x: float) -> Tuple[float, float]:
        """The closed overlapping segment ``[x_i, y_i]`` (may wrap)."""
        return (x, self.end[x])

    def covers_point(self, x: float, y: float) -> bool:
        """Does server ``x`` cover point ``y``? (closed segment, cyclic)."""
        a, b = x, self.end[x]
        return (y - a) % 1.0 <= (b - a) % 1.0

    def covers(self, y: float, alive: Optional[Set[float]] = None) -> List[float]:
        """All servers covering ``y`` (optionally restricted to alive ones).

        A cover's start point is one of the ~``max α`` predecessors of
        ``y``, so the scan is logarithmic.
        """
        y = normalize(float(y))
        n = self.n
        i = bisect_right(self.points, y) - 1
        out = []
        max_back = min(n, max(self.alpha.values()) + 2)
        for k in range(max_back):
            x = self.points[(i - k) % n]
            if self.covers_point(x, y):
                if alive is None or x in alive:
                    out.append(x)
        return out

    def coverage_counts(self, probes: np.ndarray) -> np.ndarray:
        """Number of covers of each probe point (Θ(log n) whp)."""
        return np.array([len(self.covers(float(p))) for p in probes])

    # ------------------------------------------------------------- topology
    def neighbors(self, x: float) -> List[float]:
        """Overlap edges plus continuous-graph edges (§6.2's edge set)."""
        out: Dict[float, None] = {}
        a, b = x, self.end[x]
        seg_len = (b - a) % 1.0
        # overlapping servers: those whose segment intersects [a, b]
        for y in self.covers(a) + self.covers(b):
            out.setdefault(y, None)
        i = bisect_left(self.points, x)
        k = i
        while True:
            k = (k + 1) % self.n
            p = self.points[k]
            if (p - a) % 1.0 <= seg_len:
                out.setdefault(p, None)
            else:
                break
            if k == i:
                break
        # continuous edges: covers of the images and preimage of [a, b]
        for probe in self._image_probes(a, seg_len):
            for y in self.covers(probe):
                out.setdefault(y, None)
        out.pop(x, None)
        return list(out)

    def _image_probes(self, a: float, seg_len: float) -> List[float]:
        """Sample points of l/r/b images of the segment (edge probes)."""
        ts = np.linspace(0.0, seg_len, 5)
        pts = [(a + t) % 1.0 for t in ts]
        probes: List[float] = []
        for p in pts:
            probes.append(p / 2.0)
            probes.append(p / 2.0 + 0.5)
            probes.append((2.0 * p) % 1.0)
        return probes

    def degree(self, x: float) -> int:
        return len(self.neighbors(x))

    def max_degree(self) -> int:
        return max(self.degree(x) for x in self.points)

    # ------------------------------------------------------------ data items
    def store_item(self, key: Key, value) -> List[float]:
        """Replicate an item to every server covering its hash point."""
        pos = self.item_hash(key)
        owners = self.covers(pos)
        self.store[key] = set(owners)
        return owners

    def replica_group(self, key: Key) -> List[float]:
        """Servers holding the item — pairwise connected (a clique, §6.2)."""
        return self.covers(self.item_hash(key))
