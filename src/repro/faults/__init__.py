"""Fault-tolerant overlapping DHT and fault models (paper §6)."""

from .batch_ft import FTBatchEngine, FTBatchResult
from .erasure import ErasureStore, GF256, ReedSolomonCode, RepairReport
from .lookup_ft import FTLookupResult, canonical_path, resistant_lookup, simple_lookup
from .models import FaultPlan, random_byzantine, random_failstop
from .overlap import OverlappingDHNetwork

__all__ = [
    "ErasureStore",
    "FTBatchEngine",
    "FTBatchResult",
    "FTLookupResult",
    "GF256",
    "ReedSolomonCode",
    "FaultPlan",
    "OverlappingDHNetwork",
    "RepairReport",
    "canonical_path",
    "random_byzantine",
    "random_failstop",
    "resistant_lookup",
    "simple_lookup",
]
