"""Erasure-coded storage over the replica groups (paper §6.2).

The paper closes §6.2 by observing that since an item's covering servers
form a clique, "storing the data using an erasure correcting code (for
instance the digital fountains suggested by Byers et al.) … avoid[s] the
need for replication", citing Weatherspoon–Kubiatowicz for the bandwidth/
storage win.  This module supplies that substrate:

* a systematic Reed–Solomon-style code over ``GF(256)`` (Vandermonde
  generator matrix; any ``k`` of the ``n`` shares reconstruct);
* :class:`ErasureStore` — integration with
  :class:`~repro.faults.overlap.OverlappingDHNetwork`: shares are spread
  over the replica group, retrieval gathers any ``k`` alive shares;
* the storage-overhead comparison of the paper's remark: replication
  stores ``m·|item|`` bytes for ``m``-fault tolerance, the code stores
  ``(k + m)/k·|item|``.

Implemented from scratch (tables + Gaussian elimination) — no external
dependency carries GF(256) arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


__all__ = ["GF256", "ReedSolomonCode", "ErasureStore"]


class GF256:
    """Arithmetic in GF(2^8) with the AES polynomial ``x⁸+x⁴+x³+x+1``."""

    _EXP: List[int] = []
    _LOG: List[int] = []

    @classmethod
    def _init_tables(cls) -> None:
        if cls._EXP:
            return
        exp = [0] * 512
        log = [0] * 256
        x = 1
        for i in range(255):
            exp[i] = x
            log[x] = i
            # multiply by the generator 3 = x+1 (2 is NOT primitive for 0x11B)
            y = x << 1
            if y & 0x100:
                y ^= 0x11B
            x = y ^ x
        for i in range(255, 512):
            exp[i] = exp[i - 255]
        cls._EXP, cls._LOG = exp, log

    @classmethod
    def mul(cls, a: int, b: int) -> int:
        cls._init_tables()
        if a == 0 or b == 0:
            return 0
        return cls._EXP[cls._LOG[a] + cls._LOG[b]]

    @classmethod
    def inv(cls, a: int) -> int:
        cls._init_tables()
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return cls._EXP[255 - cls._LOG[a]]

    @staticmethod
    def add(a: int, b: int) -> int:
        return a ^ b

    @classmethod
    def pow(cls, a: int, e: int) -> int:
        cls._init_tables()
        if a == 0:
            return 0 if e else 1
        return cls._EXP[(cls._LOG[a] * e) % 255]


def _xor_dot(u: Sequence[int], v: Sequence[int]) -> int:
    """Inner product over GF(256) (multiply then XOR-accumulate)."""
    acc = 0
    for a, b in zip(u, v):
        acc ^= GF256.mul(a, b)
    return acc


def _gf_mat_inv(m: List[List[int]]) -> List[List[int]]:
    """Invert a square matrix over GF(256) by Gauss–Jordan elimination."""
    k = len(m)
    a = [row[:] for row in m]
    inv = [[1 if r == c else 0 for c in range(k)] for r in range(k)]
    for col in range(k):
        pivot = next((r for r in range(col, k) if a[r][col] != 0), None)
        if pivot is None:
            raise ValueError("singular matrix over GF(256)")
        a[col], a[pivot] = a[pivot], a[col]
        inv[col], inv[pivot] = inv[pivot], inv[col]
        scale = GF256.inv(a[col][col])
        a[col] = [GF256.mul(scale, v) for v in a[col]]
        inv[col] = [GF256.mul(scale, v) for v in inv[col]]
        for r in range(k):
            if r == col or a[r][col] == 0:
                continue
            factor = a[r][col]
            a[r] = [GF256.add(v, GF256.mul(factor, w))
                    for v, w in zip(a[r], a[col])]
            inv[r] = [GF256.add(v, GF256.mul(factor, w))
                      for v, w in zip(inv[r], inv[col])]
    return inv


class ReedSolomonCode:
    """Systematic ``(k, n)`` MDS code: any ``k`` of ``n`` shares suffice.

    The generator is ``G = V · (V_top)⁻¹`` where ``V`` is the ``n × k``
    Vandermonde matrix over distinct field points: the top block becomes
    the identity (share ``i < k`` is the ``i``-th data chunk verbatim),
    and since any ``k`` rows of ``V`` form an invertible Vandermonde,
    any ``k`` rows of ``G`` stay invertible.  (Stacking identity rows on
    *raw* Vandermonde parity rows — the textbook shortcut — does NOT
    have this property; mixed identity/parity subsets can be singular.)
    """

    def __init__(self, k: int, n: int):
        if not 1 <= k <= n <= 255:
            raise ValueError("need 1 <= k <= n <= 255")
        self.k = k
        self.n = n
        vand = [[GF256.pow(i + 1, j) for j in range(k)] for i in range(n)]
        top_inv = _gf_mat_inv(vand[:k])
        self._parity_rows: List[List[int]] = [
            [
                _xor_dot(vand[i], [top_inv[j][c] for j in range(k)])
                for c in range(k)
            ]
            for i in range(k, n)
        ]

    # ------------------------------------------------------------- encoding
    def _chunks(self, data: bytes) -> List[bytes]:
        pad = (-len(data)) % self.k
        padded = data + b"\0" * pad
        size = len(padded) // self.k
        return [padded[i * size: (i + 1) * size] for i in range(self.k)]

    def encode(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Split ``data`` into ``n`` shares ``(index, payload)``.

        The original length is prepended so decode can strip padding.
        """
        framed = len(data).to_bytes(8, "big") + data
        chunks = self._chunks(framed)
        shares: List[Tuple[int, bytes]] = [(i, chunks[i]) for i in range(self.k)]
        size = len(chunks[0])
        for r, row in enumerate(self._parity_rows):
            payload = bytearray(size)
            for j, coef in enumerate(row):
                if coef == 0:
                    continue
                chunk = chunks[j]
                for b in range(size):
                    payload[b] ^= GF256.mul(coef, chunk[b])
            shares.append((self.k + r, bytes(payload)))
        return shares

    # ------------------------------------------------------------- decoding
    def _row_of(self, index: int) -> List[int]:
        if index < self.k:
            return [1 if j == index else 0 for j in range(self.k)]
        return self._parity_rows[index - self.k]

    def decode(self, shares: Sequence[Tuple[int, bytes]]) -> bytes:
        """Reconstruct from any ``k`` distinct shares."""
        if len({i for i, _ in shares}) < self.k:
            raise ValueError(f"need at least {self.k} distinct shares")
        chosen = sorted({i: p for i, p in shares}.items())[: self.k]
        size = len(chosen[0][1])
        # solve M · data = payloads over GF(256) by Gaussian elimination
        m = [list(self._row_of(i)) for i, _ in chosen]
        payloads = [bytearray(p) for _, p in chosen]
        for col in range(self.k):
            pivot = next(
                (r for r in range(col, self.k) if m[r][col] != 0), None
            )
            if pivot is None:  # pragma: no cover - Vandermonde is invertible
                raise ValueError("singular share matrix")
            m[col], m[pivot] = m[pivot], m[col]
            payloads[col], payloads[pivot] = payloads[pivot], payloads[col]
            inv = GF256.inv(m[col][col])
            m[col] = [GF256.mul(inv, v) for v in m[col]]
            payloads[col] = bytearray(GF256.mul(inv, b) for b in payloads[col])
            for r in range(self.k):
                if r == col or m[r][col] == 0:
                    continue
                factor = m[r][col]
                m[r] = [GF256.add(v, GF256.mul(factor, w))
                        for v, w in zip(m[r], m[col])]
                payloads[r] = bytearray(
                    GF256.add(b, GF256.mul(factor, c))
                    for b, c in zip(payloads[r], payloads[col])
                )
        framed = b"".join(bytes(p) for p in payloads)
        length = int.from_bytes(framed[:8], "big")
        return framed[8: 8 + length]

    def overhead(self) -> float:
        """Storage blow-up factor ``n/k`` (replication with the same fault
        tolerance would pay ``n − k + 1``)."""
        return self.n / self.k


@dataclass
class _StoredItem:
    code: ReedSolomonCode
    share_at: Dict[float, Tuple[int, bytes]]


class ErasureStore:
    """Erasure-coded items over an overlapping DHT's replica groups."""

    def __init__(self, net, data_fraction: float = 0.5):
        if not 0 < data_fraction <= 1:
            raise ValueError("data fraction must be in (0, 1]")
        self.net = net
        self.data_fraction = data_fraction
        self._items: Dict[object, _StoredItem] = {}

    def put(self, key, data: bytes) -> int:
        """Encode and spread shares over the replica group; returns n shares."""
        group = self.net.covers(self.net.item_hash(key))
        n = len(group)
        k = max(1, int(round(n * self.data_fraction)))
        code = ReedSolomonCode(k, n)
        shares = code.encode(data)
        self._items[key] = _StoredItem(
            code=code, share_at={srv: sh for srv, sh in zip(group, shares)}
        )
        return n

    def get(self, key, alive: Optional[Set[float]] = None) -> bytes:
        """Gather any ``k`` alive shares and reconstruct (Thm 6.4 regime)."""
        item = self._items[key]
        available = [
            sh for srv, sh in item.share_at.items()
            if alive is None or srv in alive
        ]
        return item.code.decode(available)

    def tolerance(self, key) -> int:
        """How many simultaneous share losses the item survives."""
        item = self._items[key]
        return len(item.share_at) - item.code.k

    def storage_bytes(self, key) -> int:
        item = self._items[key]
        return sum(len(p) for _, p in item.share_at.values())
