"""Erasure-coded storage over the replica groups (paper §6.2).

The paper closes §6.2 by observing that since an item's covering servers
form a clique, "storing the data using an erasure correcting code (for
instance the digital fountains suggested by Byers et al.) … avoid[s] the
need for replication", citing Weatherspoon–Kubiatowicz for the bandwidth/
storage win.  This module supplies that substrate:

* a systematic Reed–Solomon-style code over ``GF(256)`` (Vandermonde
  generator matrix; any ``k`` of the ``n`` shares reconstruct);
* :class:`ErasureStore` — integration with
  :class:`~repro.faults.overlap.OverlappingDHNetwork`: shares are spread
  over the replica group, retrieval gathers any ``k`` alive shares;
* **self-healing** (read-repair): when share holders fail-stop,
  :meth:`ErasureStore.read_repair` reconstructs the item from any ``k``
  surviving shares and re-encodes it to full redundancy over the *alive*
  replica group — the repair loop long-running deployments run when
  servers die mid-soak; :meth:`ErasureStore.heal` sweeps every item;
* the storage-overhead comparison of the paper's remark: replication
  stores ``m·|item|`` bytes for ``m``-fault tolerance, the code stores
  ``(k + m)/k·|item|``.

Implemented from scratch (tables + Gaussian elimination) — no external
dependency carries GF(256) arithmetic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


__all__ = ["GF256", "ReedSolomonCode", "ErasureStore", "RepairReport"]


class GF256:
    """Arithmetic in GF(2^8) with the AES polynomial ``x⁸+x⁴+x³+x+1``."""

    _EXP: List[int] = []
    _LOG: List[int] = []

    @classmethod
    def _init_tables(cls) -> None:
        if cls._EXP:
            return
        exp = [0] * 512
        log = [0] * 256
        x = 1
        for i in range(255):
            exp[i] = x
            log[x] = i
            # multiply by the generator 3 = x+1 (2 is NOT primitive for 0x11B)
            y = x << 1
            if y & 0x100:
                y ^= 0x11B
            x = y ^ x
        for i in range(255, 512):
            exp[i] = exp[i - 255]
        cls._EXP, cls._LOG = exp, log

    @classmethod
    def mul(cls, a: int, b: int) -> int:
        cls._init_tables()
        if a == 0 or b == 0:
            return 0
        return cls._EXP[cls._LOG[a] + cls._LOG[b]]

    @classmethod
    def inv(cls, a: int) -> int:
        cls._init_tables()
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return cls._EXP[255 - cls._LOG[a]]

    @staticmethod
    def add(a: int, b: int) -> int:
        return a ^ b

    @classmethod
    def pow(cls, a: int, e: int) -> int:
        cls._init_tables()
        if a == 0:
            return 0 if e else 1
        return cls._EXP[(cls._LOG[a] * e) % 255]


def _xor_dot(u: Sequence[int], v: Sequence[int]) -> int:
    """Inner product over GF(256) (multiply then XOR-accumulate)."""
    acc = 0
    for a, b in zip(u, v):
        acc ^= GF256.mul(a, b)
    return acc


def _gf_mat_inv(m: List[List[int]]) -> List[List[int]]:
    """Invert a square matrix over GF(256) by Gauss–Jordan elimination."""
    k = len(m)
    a = [row[:] for row in m]
    inv = [[1 if r == c else 0 for c in range(k)] for r in range(k)]
    for col in range(k):
        pivot = next((r for r in range(col, k) if a[r][col] != 0), None)
        if pivot is None:
            raise ValueError("singular matrix over GF(256)")
        a[col], a[pivot] = a[pivot], a[col]
        inv[col], inv[pivot] = inv[pivot], inv[col]
        scale = GF256.inv(a[col][col])
        a[col] = [GF256.mul(scale, v) for v in a[col]]
        inv[col] = [GF256.mul(scale, v) for v in inv[col]]
        for r in range(k):
            if r == col or a[r][col] == 0:
                continue
            factor = a[r][col]
            a[r] = [GF256.add(v, GF256.mul(factor, w))
                    for v, w in zip(a[r], a[col])]
            inv[r] = [GF256.add(v, GF256.mul(factor, w))
                      for v, w in zip(inv[r], inv[col])]
    return inv


class ReedSolomonCode:
    """Systematic ``(k, n)`` MDS code: any ``k`` of ``n`` shares suffice.

    The generator is ``G = V · (V_top)⁻¹`` where ``V`` is the ``n × k``
    Vandermonde matrix over distinct field points: the top block becomes
    the identity (share ``i < k`` is the ``i``-th data chunk verbatim),
    and since any ``k`` rows of ``V`` form an invertible Vandermonde,
    any ``k`` rows of ``G`` stay invertible.  (Stacking identity rows on
    *raw* Vandermonde parity rows — the textbook shortcut — does NOT
    have this property; mixed identity/parity subsets can be singular.)
    """

    def __init__(self, k: int, n: int):
        if not 1 <= k <= n <= 255:
            raise ValueError("need 1 <= k <= n <= 255")
        self.k = k
        self.n = n
        vand = [[GF256.pow(i + 1, j) for j in range(k)] for i in range(n)]
        top_inv = _gf_mat_inv(vand[:k])
        self._parity_rows: List[List[int]] = [
            [
                _xor_dot(vand[i], [top_inv[j][c] for j in range(k)])
                for c in range(k)
            ]
            for i in range(k, n)
        ]

    # ------------------------------------------------------------- encoding
    def _chunks(self, data: bytes) -> List[bytes]:
        pad = (-len(data)) % self.k
        padded = data + b"\0" * pad
        size = len(padded) // self.k
        return [padded[i * size: (i + 1) * size] for i in range(self.k)]

    def encode(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Split ``data`` into ``n`` shares ``(index, payload)``.

        The original length is prepended so decode can strip padding.
        """
        framed = len(data).to_bytes(8, "big") + data
        chunks = self._chunks(framed)
        shares: List[Tuple[int, bytes]] = [(i, chunks[i]) for i in range(self.k)]
        size = len(chunks[0])
        for r, row in enumerate(self._parity_rows):
            payload = bytearray(size)
            for j, coef in enumerate(row):
                if coef == 0:
                    continue
                chunk = chunks[j]
                for b in range(size):
                    payload[b] ^= GF256.mul(coef, chunk[b])
            shares.append((self.k + r, bytes(payload)))
        return shares

    # ------------------------------------------------------------- decoding
    def _row_of(self, index: int) -> List[int]:
        if index < self.k:
            return [1 if j == index else 0 for j in range(self.k)]
        return self._parity_rows[index - self.k]

    def decode(self, shares: Sequence[Tuple[int, bytes]]) -> bytes:
        """Reconstruct from any ``k`` distinct shares."""
        if len({i for i, _ in shares}) < self.k:
            raise ValueError(f"need at least {self.k} distinct shares")
        chosen = sorted({i: p for i, p in shares}.items())[: self.k]
        size = len(chosen[0][1])
        # solve M · data = payloads over GF(256) by Gaussian elimination
        m = [list(self._row_of(i)) for i, _ in chosen]
        payloads = [bytearray(p) for _, p in chosen]
        for col in range(self.k):
            pivot = next(
                (r for r in range(col, self.k) if m[r][col] != 0), None
            )
            if pivot is None:  # pragma: no cover - Vandermonde is invertible
                raise ValueError("singular share matrix")
            m[col], m[pivot] = m[pivot], m[col]
            payloads[col], payloads[pivot] = payloads[pivot], payloads[col]
            inv = GF256.inv(m[col][col])
            m[col] = [GF256.mul(inv, v) for v in m[col]]
            payloads[col] = bytearray(GF256.mul(inv, b) for b in payloads[col])
            for r in range(self.k):
                if r == col or m[r][col] == 0:
                    continue
                factor = m[r][col]
                m[r] = [GF256.add(v, GF256.mul(factor, w))
                        for v, w in zip(m[r], m[col])]
                payloads[r] = bytearray(
                    GF256.add(b, GF256.mul(factor, c))
                    for b, c in zip(payloads[r], payloads[col])
                )
        framed = b"".join(bytes(p) for p in payloads)
        length = int.from_bytes(framed[:8], "big")
        return framed[8: 8 + length]

    def overhead(self) -> float:
        """Storage blow-up factor ``n/k`` (replication with the same fault
        tolerance would pay ``n − k + 1``)."""
        return self.n / self.k


@dataclass
class _StoredItem:
    code: ReedSolomonCode
    share_at: Dict[float, Tuple[int, bytes]]
    pos: float = 0.0            # the item's hash point (replica-group anchor)
    digest: str = ""            # sha256 of the plaintext, for repair audits


@dataclass
class RepairReport:
    """Outcome of one :meth:`ErasureStore.heal` sweep."""

    items: int = 0              # items examined
    healthy: int = 0            # already at full redundancy on alive holders
    repaired: int = 0           # reconstructed and re-encoded
    shares_rebuilt: int = 0     # share payloads (re)written during repairs
    lost: int = 0               # unrecoverable (fewer than k alive shares)

    def merge(self, other: "RepairReport") -> "RepairReport":
        """Fold another sweep's counters into this one (all plain sums)."""
        self.items += other.items
        self.healthy += other.healthy
        self.repaired += other.repaired
        self.shares_rebuilt += other.shares_rebuilt
        self.lost += other.lost
        return self


class ErasureStore:
    """Erasure-coded items over an overlapping DHT's replica groups."""

    def __init__(self, net, data_fraction: float = 0.5):
        if not 0 < data_fraction <= 1:
            raise ValueError("data fraction must be in (0, 1]")
        self.net = net
        self.data_fraction = data_fraction
        self._items: Dict[object, _StoredItem] = {}

    def keys(self) -> List:
        """The stored item keys (insertion order)."""
        return list(self._items)

    def _code_for(self, group_size: int) -> ReedSolomonCode:
        k = max(1, int(round(group_size * self.data_fraction)))
        return ReedSolomonCode(k, group_size)

    def put(self, key, data: bytes) -> int:
        """Encode and spread shares over the replica group; returns n shares."""
        pos = float(self.net.item_hash(key))
        group = self.net.covers(pos)
        code = self._code_for(len(group))
        shares = code.encode(data)
        self._items[key] = _StoredItem(
            code=code,
            share_at={srv: sh for srv, sh in zip(group, shares)},
            pos=pos,
            digest=hashlib.sha256(data).hexdigest(),
        )
        return len(group)

    def get(self, key, alive: Optional[Set[float]] = None) -> bytes:
        """Gather any ``k`` alive shares and reconstruct (Thm 6.4 regime)."""
        item = self._items[key]
        available = [
            sh for srv, sh in item.share_at.items()
            if alive is None or srv in alive
        ]
        return item.code.decode(available)

    def tolerance(self, key) -> int:
        """How many simultaneous share losses the item survives."""
        item = self._items[key]
        return len(item.share_at) - item.code.k

    def storage_bytes(self, key) -> int:
        item = self._items[key]
        return sum(len(p) for _, p in item.share_at.values())

    # ------------------------------------------------------------ self-healing
    def shares_alive(self, key, alive: Optional[Set[float]] = None) -> int:
        """Shares still held by alive servers (``k`` of them reconstruct)."""
        item = self._items[key]
        if alive is None:
            return len(item.share_at)
        return sum(1 for srv in item.share_at if srv in alive)

    def is_recoverable(self, key, alive: Optional[Set[float]] = None) -> bool:
        """Can the item still be reconstructed under this fault set?"""
        return self.shares_alive(key, alive) >= self._items[key].code.k

    def verify(self, key, alive: Optional[Set[float]] = None) -> bool:
        """Byte-level audit of the item under the current fault set.

        Decodes from the alive shares, checks the plaintext against the
        put-time sha256, then re-encodes and compares **every** alive
        share payload to its expected value — so a single corrupted
        share fails the audit even when the decode happened to pick an
        honest ``k``-subset.
        """
        item = self._items[key]
        if not self.is_recoverable(key, alive):
            return False
        available = [
            sh for srv, sh in item.share_at.items()
            if alive is None or srv in alive
        ]
        data = item.code.decode(available)
        if hashlib.sha256(data).hexdigest() != item.digest:
            return False
        expected = item.code.encode(data)
        return all(sh == expected[sh[0]] for sh in available)

    def read_repair(self, key, alive: Set[float]) -> int:
        """Restore full redundancy over the alive replica group.

        Decodes the item from any ``k`` surviving shares, re-encodes it
        with a code sized to the *alive* members of its replica group,
        and redistributes the shares — exactly the read-repair a lookup
        that notices missing shares would trigger.  Returns the number
        of share payloads written (0 when every holder is still alive
        and the item needs no repair).  Raises ``ValueError`` when fewer
        than ``k`` shares survive (the item is genuinely lost) or when
        the whole replica group is dead.
        """
        item = self._items[key]
        holders_alive = all(srv in alive for srv in item.share_at)
        if holders_alive:
            return 0
        if not self.is_recoverable(key, alive):
            raise ValueError(
                f"item {key!r} is unrecoverable: "
                f"{self.shares_alive(key, alive)} alive shares < "
                f"k={item.code.k}"
            )
        data = item.code.decode([
            sh for srv, sh in item.share_at.items() if srv in alive
        ])
        if hashlib.sha256(data).hexdigest() != item.digest:
            raise ValueError(  # pragma: no cover - decode is exact
                f"item {key!r} failed its integrity audit during repair")
        group = self.net.covers(item.pos, alive=alive)
        if not group:
            raise ValueError(
                f"item {key!r} cannot be re-homed: its whole replica "
                "group is dead"
            )
        code = self._code_for(len(group))
        placed = dict(zip(group, code.encode(data)))
        old = item.share_at
        rebuilt = sum(1 for srv, sh in placed.items() if old.get(srv) != sh)
        item.code = code
        item.share_at = placed
        return rebuilt

    def heal(self, alive: Set[float],
             keys: Optional[Iterable] = None) -> RepairReport:
        """Read-repair sweep over ``keys`` (default: every stored item).

        Items with at least ``k`` surviving shares are reconstructed and
        re-encoded to full redundancy; items below the threshold are
        counted as ``lost`` and left untouched (their surviving shares
        may still matter to a later, larger repair).
        """
        report = RepairReport()
        for key in (self.keys() if keys is None else keys):
            report.items += 1
            item = self._items[key]
            if all(srv in alive for srv in item.share_at):
                report.healthy += 1
                continue
            if not self.is_recoverable(key, alive):
                report.lost += 1
                continue
            report.shares_rebuilt += self.read_repair(key, alive)
            report.repaired += 1
        return report
