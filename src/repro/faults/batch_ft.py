"""Vectorized fault-tolerant batch lookups on the overlapping DHT (§6.3).

The scalar algorithms in :mod:`repro.faults.lookup_ft` walk one
canonical path at a time through Python cover scans — fine for
validating Theorems 6.3/6.4/6.6, far too slow for the fault sweeps the
roadmap targets.  This module routes *arrays* of fault-tolerant lookups
through the same continuous-discrete machinery, riding the batch spine
of :mod:`repro.core.batch`:

* the §6.2 overlapping cover structure is consumed through the
  network's array-backed cover tables
  (:meth:`~repro.faults.overlap.OverlappingDHNetwork.cover_table`): one
  ``searchsorted`` plus a ``(max α, B)`` gather answers "all covers of
  every path point of the batch";
* the §6.3 canonical path is computed per *level* in closed form,
  exactly like the fast-lookup engine — level ``j`` of every walk is
  ``(y + ⌊z·2^t⌋ mod 2^j) / 2^j`` — so a whole batch shares one walk
  evaluation per level;
* :class:`~repro.faults.models.FaultPlan` fail-stop/Byzantine sets are
  encoded as boolean masks keyed by server id, making per-hop survival
  one boolean reduction per level, and the Theorem 6.6 majority votes
  counting over covers instead of flooding Python dicts;
* Simple-Lookup server choices come from explicit per-hop uniforms (or
  an ``rng``), and the chosen servers are emitted as the same flattened
  CSR path arrays (:func:`~repro.core.batch.levels_to_csr`) the
  congestion accounting layer consumes — a
  :class:`~repro.core.routing_stats.BatchCongestion` can book a routed
  fault batch directly.

Every float operation mirrors the scalar implementation (same order of
IEEE-754 operations), so with shared choice uniforms the batch Simple
Lookup is **bit-identical** to :func:`~repro.faults.lookup_ft
.simple_lookup` — success flags, chosen servers, hop/message counts and
traversed levels — and the batch resistant lookup reproduces
:func:`~repro.faults.lookup_ft.resistant_lookup`'s success/message/
parallel-time accounting exactly.  The parity tests and the scalar
cross-check replay of ``repro.cli bench-faults`` assert this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.batch import _check_keep_paths, levels_to_csr
from ..core.lookup import MAX_WALK_STEPS
from ..core.segments import fold_unit, normalize_array
from .models import FaultPlan
from .overlap import OverlappingDHNetwork

__all__ = ["FTBatchResult", "FTBatchEngine"]


@dataclass
class FTBatchResult:
    """Array-of-structs outcome of a batch of fault-tolerant lookups.

    Mirrors :class:`~repro.faults.lookup_ft.FTLookupResult`
    field-for-field with one NumPy array of length ``size`` per
    quantity.  ``parallel_time`` counts the relay levels *actually
    traversed* (on failure: up to the point the walk died), matching the
    scalar semantics.  For Simple Lookup batches routed with
    ``keep_paths``, the chosen server walks are available as CSR arrays
    with the :mod:`repro.core.batch` conventions — ``path_servers``
    (int32 indices into :attr:`points`, consecutive duplicates
    compressed) and ``path_offsets`` (int64, length ``size + 1``) — so
    :class:`~repro.core.routing_stats.BatchCongestion.record_batch`
    accepts the result as-is.
    """

    algorithm: str
    points: np.ndarray
    targets: np.ndarray
    source_idx: np.ndarray
    t: np.ndarray
    success: np.ndarray
    messages: np.ndarray
    parallel_time: np.ndarray
    holder_idx: Optional[np.ndarray] = None     # simple lookups only
    path_servers: Optional[np.ndarray] = None
    path_offsets: Optional[np.ndarray] = None
    #: covering-edge selection rule the batch was routed with
    #: (see :mod:`repro.peer.policy`); "uniform" is the paper's rule
    policy: str = "uniform"
    _levels: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def size(self) -> int:
        return int(self.targets.size)

    @property
    def hops(self) -> np.ndarray:
        """Server transitions per lookup (== compressed path length − 1).

        For the Simple Lookup this equals :attr:`messages`: the walk
        sends one message whenever it moves to a different server.
        Resistant floods have no single walk — their :attr:`messages`
        is the Theorem 6.6 count Σ |S_k|·|S_{k+1}| — so asking for hops
        there is a contract error, not a number.
        """
        if self.algorithm != "simple":
            raise ValueError(
                "hops is defined for Simple Lookup batches only; resistant "
                "floods report `messages` (Σ |senders|·|receivers|)")
        return self.messages

    @property
    def sources(self) -> np.ndarray:
        return self.points[self.source_idx]

    def success_rate(self) -> float:
        return float(self.success.mean()) if self.size else 0.0

    # ------------------------------------------------------------- paths
    @property
    def keeps_paths(self) -> bool:
        return self._levels is not None or self.path_servers is not None

    def to_csr(self) -> tuple:
        """The ``(path_servers, path_offsets)`` CSR arrays (cached)."""
        if self.path_servers is None:
            if self._levels is None:
                raise ValueError("batch was routed with keep_paths=False")
            self.path_servers, self.path_offsets = levels_to_csr(
                self.size, [self._levels])
        return self.path_servers, self.path_offsets

    def path_points(self, i: int) -> np.ndarray:
        """Id points of lookup ``i``'s compressed server walk."""
        servers, offsets = self.to_csr()
        return self.points[servers[offsets[i]:offsets[i + 1]]]

    def server_path(self, i: int) -> List[float]:
        """Compressed server walk of lookup ``i``, as id points.

        Equals ``compress_path(FTLookupResult.servers)`` of the scalar
        engine for the same lookup and choice uniforms.
        """
        return [float(p) for p in self.path_points(i)]

    def path_lengths(self) -> np.ndarray:
        """Servers on each compressed walk (``hops + 1`` when complete)."""
        return np.diff(self.to_csr()[1])


class FTBatchEngine:
    """Batch driver for the §6.3 lookups over one overlapping network.

    The engine holds only references to the network's frozen cover
    tables (the overlapping membership is static), plus the fault-plan
    mask cache.  Both batch calls accept either raw target points or a
    prebuilt plan; sources must be server id points (or integer indices
    into the sorted id vector).
    """

    def __init__(self, net: OverlappingDHNetwork):
        self.net = net
        self.points = net.points_array
        self.seg_len = net.seg_len_array
        self.mid = net.mid_array
        self.n = net.n

    # ----------------------------------------------------------- helpers
    def _masks(self, plan: Optional[FaultPlan]) -> Tuple[np.ndarray, np.ndarray]:
        """(alive, liar) boolean masks aligned with the sorted id vector."""
        if plan is None:
            ones = np.ones(self.n, dtype=bool)
            return ones, np.zeros(self.n, dtype=bool)
        return plan.alive_mask(self.points), plan.liar_mask(self.points)

    def source_indices(self, sources, size: int) -> np.ndarray:
        """Resolve sources (id points or indices) to sorted-vector indices."""
        arr = np.asarray(sources)
        if np.issubdtype(arr.dtype, np.integer):
            idx = np.atleast_1d(arr.astype(np.int64)).ravel()
            if idx.size == 1 and size != 1:
                idx = np.full(size, idx[0], dtype=np.int64)
            if idx.size != size:
                raise ValueError("sources and targets must have the same length")
            if idx.size and (idx.min() < 0 or idx.max() >= self.n):
                raise ValueError("source index out of range")
            return idx
        pts = np.atleast_1d(arr.astype(np.float64)).ravel()
        if pts.size == 1 and size != 1:
            pts = np.full(size, pts[0])
        if pts.size != size:
            raise ValueError("sources and targets must have the same length")
        idx = np.clip(np.searchsorted(self.points, pts), 0, self.n - 1)
        if not np.array_equal(self.points[idx], pts):
            raise ValueError("sources must be server id points of the network")
        return idx

    def canonical_walks(self, src_idx: np.ndarray, y: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized §6.3 canonical-path parameters ``(t, ⌊z·2^t⌋)``.

        Mirrors :func:`~repro.faults.lookup_ft.canonical_path`: the
        smallest ``t`` whose approach walk from the source-segment
        midpoint ``z`` lands the target image inside the source's
        overlapping segment.  Path point ``j`` (0 ≤ j ≤ t, target end at
        ``j = 0``) of lookup ``b`` is then
        ``(y_b + (s_b mod 2^j)) / 2^j`` folded to ``[0, 1)``.
        """
        size = int(y.size)
        a = self.points[src_idx]
        seg_len = self.seg_len[src_idx]
        z = self.mid[src_idx]
        t = np.zeros(size, dtype=np.int64)
        s_final = np.zeros(size, dtype=np.float64)
        pending = np.ones(size, dtype=bool)
        for level in range(MAX_WALK_STEPS + 1):
            if level == 0:
                p = y
                s_level = None
            else:
                scale = float(1 << level)
                s_level = np.trunc(z * scale)
                p = fold_unit((y + s_level) / scale)
            inseg = np.mod(p - a, 1.0) <= seg_len
            newly = pending & inseg
            t[newly] = level
            if s_level is not None:
                s_final[newly] = s_level[newly]
            pending &= ~inseg
            if not pending.any():
                break
        else:  # pragma: no cover - canonical_path raises identically
            raise RuntimeError("batch canonical path failed to converge")
        return t, s_final

    def _level_points(self, y: np.ndarray, s_final: np.ndarray,
                      j: np.ndarray) -> np.ndarray:
        """Canonical path points at (per-lookup) level ``j``."""
        # int32 exponents: np.ldexp has no int64 loop where C long is
        # 32-bit (Windows), and j ≤ MAX_WALK_STEPS = 512 anyway
        scale = np.ldexp(1.0, j.astype(np.int32))
        off = np.mod(s_final, scale)
        return fold_unit((y + off) / scale)

    # ----------------------------------------------------- simple lookup
    def batch_simple_lookup(
        self,
        sources,
        targets,
        rng: Optional[np.random.Generator] = None,
        choices: Optional[np.ndarray] = None,
        plan: Optional[FaultPlan] = None,
        keep_paths: "bool | str" = False,
        oracle=None,
        policy: str = "uniform",
        temperature: float = 1.0,
    ) -> FTBatchResult:
        """Theorem 6.3's Simple Lookup for a whole batch of pairs.

        ``sources`` are server id points (or indices), ``targets`` raw
        ring points (scalars broadcast).  Each hop gathers the alive
        covers of every pending path point from the cover table and
        picks cover ``⌊u·|alive|⌋`` per lookup, where the uniforms ``u``
        come from ``choices`` (shape ``(size, L)``, ``L ≥ max t``) or
        are drawn from ``rng`` — replaying the same uniforms through the
        scalar :func:`~repro.faults.lookup_ft.simple_lookup` reproduces
        the batch bit-for-bit.  ``keep_paths`` (``True`` or ``"csr"``)
        records the chosen server walks as CSR path arrays.

        Passing an ``oracle`` (:class:`~repro.peer.itracker.CostOracle`
        over this network's points) with ``policy="greedy"`` or
        ``"weighted"`` makes the per-hop cover choice cost-aware: the
        candidate costs are one vectorized gather and the pick follows
        :func:`~repro.peer.policy.select_rows`.  The same uniforms drive
        the scalar walk bit-identically through its matching
        ``oracle``/``policy`` arguments ("greedy" needs no uniforms at
        all); ``policy="uniform"`` ignores the oracle and is
        byte-identical to the cost-less path.
        """
        _check_keep_paths(keep_paths)
        cost_aware = oracle is not None and policy != "uniform"
        if policy != "uniform":
            from ..peer.policy import check_policy
            check_policy(policy)
            if oracle is None:
                raise ValueError(f"cost policy {policy!r} needs a CostOracle")
        if rng is None and choices is None and not (
                cost_aware and policy == "greedy"):
            raise ValueError("batch_simple_lookup needs an rng or explicit choices")
        plan = plan if plan is not None else FaultPlan()
        alive, liar = self._masks(plan)
        y = normalize_array(targets)
        size = y.size
        src_idx = self.source_indices(sources, size)
        t, s_final = self.canonical_walks(src_idx, y)
        tmax = int(t.max()) if size else 0

        u: Optional[np.ndarray] = None
        if choices is not None:
            u = np.asarray(choices, dtype=np.float64)
            if u.ndim == 1:
                u = np.broadcast_to(u, (size, u.size))
            if u.shape[0] != size:
                raise ValueError("choices must have one uniform row per lookup")
            if u.shape[1] < tmax:
                raise ValueError("supplied choices exhausted before lookup finished")
        elif rng is not None and tmax:
            u = rng.random((size, tmax))

        cur = src_idx.copy()
        messages = np.zeros(size, dtype=np.int64)
        traversed = np.zeros(size, dtype=np.int64)
        failed = np.zeros(size, dtype=bool)
        levels = None
        if keep_paths:
            levels = np.full((tmax + 1, size), -1, dtype=np.int64)
            levels[0] = src_idx

        for h in range(1, tmax + 1):
            lanes = np.flatnonzero((t >= h) & ~failed)
            if not lanes.size:
                break
            p = self._level_points(y[lanes], s_final[lanes], t[lanes] - h)
            cand, mask = self.net.cover_table(p)
            ok = mask & alive[cand]
            cnt = ok.sum(axis=0)
            dead = cnt == 0
            if cost_aware:
                from ..peer.policy import select_rows
                costs = oracle.edge_costs(cur[lanes], cand)
                u_row = u[lanes, h - 1] if u is not None else None
                sel = select_rows(costs, ok, u_row, policy, temperature)
            else:
                # the (⌊u·cnt⌋+1)-th alive cover, in the scalar scan order
                pick = np.minimum((u[lanes, h - 1] * cnt).astype(np.int64),
                                  cnt - 1)
                sel = np.argmax(ok & (np.cumsum(ok, axis=0) == pick + 1),
                                axis=0)
            nxt = cand[sel, np.arange(lanes.size)]
            failed[lanes[dead]] = True
            surv = lanes[~dead]
            nxt = nxt[~dead]
            messages[surv] += nxt != cur[surv]
            cur[surv] = nxt
            traversed[surv] = h
            if levels is not None:
                levels[h, surv] = nxt

        success = alive[cur] & ~liar[cur] & ~failed
        result = FTBatchResult(
            algorithm="simple",
            points=self.points,
            targets=y,
            source_idx=src_idx,
            t=t,
            success=success,
            messages=messages,
            parallel_time=traversed,
            holder_idx=cur,
            policy=policy,
            _levels=levels,
        )
        if keep_paths == "csr":
            result.to_csr()
            result._levels = None  # CSR replaces the level matrix
        return result

    # -------------------------------------------------- resistant lookup
    def batch_resistant_lookup(
        self,
        sources,
        targets,
        plan: Optional[FaultPlan] = None,
    ) -> FTBatchResult:
        """Theorem 6.6's false-message-resistant lookup, batched.

        Floods every canonical path level-by-level with the majority
        filter of the scalar :func:`~repro.faults.lookup_ft
        .resistant_lookup` evaluated as counts over the cover table: at
        each relay level the only value that can carry a strict majority
        is either the payload currently in flight (honest senders all
        relay it) or — when exactly one, lying, sender remains — that
        sender's private corruption, because every liar corrupts to a
        value keyed by its own id.  Success, message counts
        (Σ |senders|·|alive receivers|) and traversed levels reproduce
        the scalar accounting exactly.
        """
        plan = plan if plan is not None else FaultPlan()
        alive, liar = self._masks(plan)
        y = normalize_array(targets)
        size = y.size
        src_idx = self.source_indices(sources, size)
        t, s_final = self.canonical_walks(src_idx, y)
        tmax = int(t.max()) if size else 0

        # in-flight payload per lookup: 0 = the true value, i+1 = the
        # corruption injected by server i
        value = np.zeros(size, dtype=np.int64)
        messages = np.zeros(size, dtype=np.int64)
        traversed = np.zeros(size, dtype=np.int64)
        failed = np.zeros(size, dtype=bool)

        # layer 0: the replica group (alive covers of y) answers
        cand, mask = self.net.cover_table(y)
        amask = mask & alive[cand]
        send_cnt = amask.sum(axis=0)                      # |senders| next hop
        honest_cnt = (amask & ~liar[cand]).sum(axis=0)    # carrying the payload
        single_srv = cand[np.argmax(amask, axis=0), np.arange(size)]
        value_present = np.zeros(size, dtype=np.int64)    # liar(v) among senders

        # zero-hop lookups answer straight from the replica group: the
        # requester takes the majority of the |senders| answers it heard
        zero_hop = t == 0
        success = np.zeros(size, dtype=bool)
        success[zero_hop] = 2 * honest_cnt[zero_hop] > send_cnt[zero_hop]

        for level in range(1, tmax + 1):
            lanes = np.flatnonzero((t >= level) & ~failed)
            if not lanes.size:
                break
            p = self._level_points(y[lanes], s_final[lanes],
                                   np.full(lanes.size, level, dtype=np.int64))
            cand, mask = self.net.cover_table(p)
            amask = mask & alive[cand]
            recv_cnt = amask.sum(axis=0)
            s_cnt = send_cnt[lanes]
            messages[lanes] += s_cnt * recv_cnt
            traversed[lanes] = level

            # strict-majority filter (see class docstring for why only
            # these two candidates can win)
            cnt_v = honest_cnt[lanes] + value_present[lanes]
            forwards = 2 * cnt_v > s_cnt
            lone_liar = (s_cnt == 1) & ~forwards
            value[lanes[lone_liar]] = single_srv[lanes[lone_liar]] + 1
            died = (~(forwards | lone_liar)) | (recv_cnt == 0)
            failed[lanes[died]] = True

            # sender-side state for the next relay level
            send_cnt[lanes] = recv_cnt
            honest_cnt[lanes] = (amask & ~liar[cand]).sum(axis=0)
            single_srv[lanes] = cand[np.argmax(amask, axis=0),
                                     np.arange(lanes.size)]
            vp = np.zeros(lanes.size, dtype=np.int64)
            corrupt = np.flatnonzero(value[lanes] > 0)
            if corrupt.size:
                srv = value[lanes][corrupt] - 1
                vp[corrupt] = (amask[:, corrupt]
                               & (cand[:, corrupt] == srv[None, :])).any(axis=0)
            value_present[lanes] = vp

        multi = ~zero_hop
        success[multi] = ~failed[multi] & (value[multi] == 0)
        return FTBatchResult(
            algorithm="resistant",
            points=self.points,
            targets=y,
            source_idx=src_idx,
            t=t,
            success=success,
            messages=messages,
            parallel_time=traversed,
        )
