"""Fault models (paper §6 preamble).

Two of the paper's models are mechanised:

* **fail-stop** — a random subset of servers stops responding entirely;
* **false message injection** — faulty servers "produce arbitrary false
  versions of the data item requested, but otherwise behave correctly":
  they follow the routing protocol yet corrupt payloads.

Both draw the faulty set randomly and *independently of the system's
random choices* — the assumption Theorem 6.4's remark makes explicit
(correlated failures are fine as long as they ignore the ids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence, Set

import numpy as np

__all__ = ["FaultPlan", "random_failstop", "random_byzantine"]


def _member_mask(servers: np.ndarray, chosen: Set[float]) -> np.ndarray:
    """Boolean membership of each server id in a fault set."""
    if not chosen:
        return np.zeros(servers.size, dtype=bool)
    table = np.fromiter(chosen, dtype=np.float64, count=len(chosen))
    return np.isin(servers, table)


@dataclass
class FaultPlan:
    """Which servers are faulty and how they misbehave.

    The canonical representation is two sets of server id points (the
    scalar §6.3 algorithms probe them per hop); :meth:`failed_mask` /
    :meth:`liar_mask` / :meth:`alive_mask` re-encode the same plan as
    NumPy boolean arrays aligned with a sorted server-id vector, which is
    how the batch engine (:mod:`repro.faults.batch_ft`) consumes it —
    per-hop survival becomes one boolean reduction per level.
    """

    failed: Set[float] = field(default_factory=set)       # fail-stop servers
    liars: Set[float] = field(default_factory=set)        # false-injection servers

    def is_alive(self, server: float) -> bool:
        return server not in self.failed

    def alive(self, servers: Sequence[float]) -> Set[float]:
        return {s for s in servers if s not in self.failed}

    def answer_of(self, server: float, true_value: Hashable) -> Hashable:
        """The value this server reports for an item it stores."""
        if server in self.liars:
            return ("CORRUPT", server)
        return true_value

    # ------------------------------------------------- array encodings
    def failed_mask(self, servers: Sequence[float]) -> np.ndarray:
        """Boolean fail-stop mask aligned with ``servers`` (keyed by id)."""
        return _member_mask(np.asarray(servers, dtype=np.float64), self.failed)

    def alive_mask(self, servers: Sequence[float]) -> np.ndarray:
        """``~failed_mask`` — the survivors among ``servers``."""
        return ~self.failed_mask(servers)

    def liar_mask(self, servers: Sequence[float]) -> np.ndarray:
        """Boolean false-injection mask aligned with ``servers``."""
        return _member_mask(np.asarray(servers, dtype=np.float64), self.liars)

    @classmethod
    def from_masks(
        cls,
        servers: Sequence[float],
        failed: "np.ndarray | None" = None,
        liars: "np.ndarray | None" = None,
    ) -> "FaultPlan":
        """Build a plan from boolean arrays aligned with ``servers``."""
        pts = np.asarray(servers, dtype=np.float64)
        plan = cls()
        if failed is not None:
            plan.failed = {float(s) for s in pts[np.asarray(failed, dtype=bool)]}
        if liars is not None:
            plan.liars = {float(s) for s in pts[np.asarray(liars, dtype=bool)]}
        return plan


def random_failstop(
    servers: Sequence[float], p: float, rng: np.random.Generator
) -> FaultPlan:
    """Each server fails independently with probability ``p`` (Thm 6.4)."""
    if not 0 <= p < 1:
        raise ValueError("failure probability must be in [0, 1)")
    mask = rng.random(len(servers)) < p
    return FaultPlan(failed={s for s, m in zip(servers, mask) if m})


def random_byzantine(
    servers: Sequence[float], p: float, rng: np.random.Generator
) -> FaultPlan:
    """Each server lies independently with probability ``p`` (Thm 6.6)."""
    if not 0 <= p < 1:
        raise ValueError("corruption probability must be in [0, 1)")
    mask = rng.random(len(servers)) < p
    return FaultPlan(liars={s for s, m in zip(servers, mask) if m})
