"""Fault models (paper §6 preamble).

Two of the paper's models are mechanised:

* **fail-stop** — a random subset of servers stops responding entirely;
* **false message injection** — faulty servers "produce arbitrary false
  versions of the data item requested, but otherwise behave correctly":
  they follow the routing protocol yet corrupt payloads.

Both draw the faulty set randomly and *independently of the system's
random choices* — the assumption Theorem 6.4's remark makes explicit
(correlated failures are fine as long as they ignore the ids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence, Set

import numpy as np

__all__ = ["FaultPlan", "random_failstop", "random_byzantine"]


@dataclass
class FaultPlan:
    """Which servers are faulty and how they misbehave."""

    failed: Set[float] = field(default_factory=set)       # fail-stop servers
    liars: Set[float] = field(default_factory=set)        # false-injection servers

    def is_alive(self, server: float) -> bool:
        return server not in self.failed

    def alive(self, servers: Sequence[float]) -> Set[float]:
        return {s for s in servers if s not in self.failed}

    def answer_of(self, server: float, true_value: Hashable) -> Hashable:
        """The value this server reports for an item it stores."""
        if server in self.liars:
            return ("CORRUPT", server)
        return true_value


def random_failstop(
    servers: Sequence[float], p: float, rng: np.random.Generator
) -> FaultPlan:
    """Each server fails independently with probability ``p`` (Thm 6.4)."""
    if not 0 <= p < 1:
        raise ValueError("failure probability must be in [0, 1)")
    mask = rng.random(len(servers)) < p
    return FaultPlan(failed={s for s, m in zip(servers, mask) if m})


def random_byzantine(
    servers: Sequence[float], p: float, rng: np.random.Generator
) -> FaultPlan:
    """Each server lies independently with probability ``p`` (Thm 6.6)."""
    if not 0 <= p < 1:
        raise ValueError("corruption probability must be in [0, 1)")
    mask = rng.random(len(servers)) < p
    return FaultPlan(liars={s for s, m in zip(servers, mask) if m})
