"""F1–F4 — regenerating the paper's figures.

The four figures are explanatory diagrams; each generator rebuilds the
depicted object from the implementation and asserts the property the
figure illustrates:

* **Figure 1** — edges of a point (top) and the two half-size images of
  an interval (bottom) in the continuous graph;
* **Figure 2** — the first two layers of the path tree rooted at
  ``h(i) = y`` with positions y/2, y/2+1/2, y/4, …;
* **Figure 3** — an active tree mapped onto server segments (bold tree
  edges, dashed server assignment): every active node is covered by
  exactly one server;
* **Figure 4** — a fault-tolerant lookup's message flooding through all
  covers of each canonical-path point.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..core import ContinuousGraph, DistanceHalvingNetwork
from ..core.caching import ActiveTree
from ..core.pathtree import PathTree
from ..faults import OverlappingDHNetwork, canonical_path
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("F1")
def figure1(seed: int = 101, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        g = ContinuousGraph(2)
        x = 0.3
        from ..core.interval import Arc

        arc = Arc(0.3, 0.5)
        l_img, r_img = g.image_arcs(arc)
        rows = [
            {"object": "point x", "value": x, "l(x)": g.left(x), "r(x)": g.right(x),
             "b(x)": g.backward(x)},
            {"object": "interval [0.3,0.5)", "value": 0.2,
             "l(x)": f"[{l_img.start},{l_img.end})",
             "r(x)": f"[{r_img.start},{r_img.end})", "b(x)": "-"},
        ]
        checks = {
            "l(x)=x/2, r(x)=x/2+1/2": g.left(x) == 0.15 and g.right(x) == 0.65,
            "interval maps to two images of half its size": (
                abs(float(l_img.length) - 0.1) < 1e-12
                and abs(float(r_img.length) - 0.1) < 1e-12
            ),
            "backward edge inverts both": (
                abs(g.backward(g.left(x)) - x) < 1e-12
                and abs(g.backward(g.right(x)) - x) < 1e-12
            ),
        }
        return ExperimentResult("F1", "Figure 1 — continuous edges & interval images",
                                "l,r halve intervals; b inverts", rows, checks)

    return timed(body)


@register("F2")
def figure2(seed: int = 102, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        y = 0.2  # the figure's h(i) = y
        tree = PathTree(y)
        rows = []
        for j in (0, 1, 2):
            for addr in tree.layer(j):
                rows.append({"depth": j, "address": "".join(map(str, addr)) or "root",
                             "position": round(float(tree.position(addr)), 4)})
        layer1 = sorted(float(tree.position(a)) for a in tree.layer(1))
        layer2 = sorted(float(tree.position(a)) for a in tree.layer(2))
        checks = {
            "layer 1 = {y/2, y/2+1/2}": np.allclose(layer1, [y / 2, y / 2 + 0.5]),
            "layer 2 = {y/4, y/4+1/4, y/4+1/2, y/4+3/4}": np.allclose(
                layer2, [y / 4, y / 4 + 0.25, y / 4 + 0.5, y / 4 + 0.75]
            ),
            "layer spacing ≥ 2^-j (Obs 3.2)": min(
                b - a for a, b in zip(layer2, layer2[1:])
            )
            >= 0.25 - 1e-12,
        }
        return ExperimentResult("F2", "Figure 2 — first layers of the path tree",
                                "children of z are l(z), r(z)", rows, checks)

    return timed(body)


@register("F3")
def figure3(seed: int = 103, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        # the figure: active tree rooted at h(i)=0.2 over a segmented ring
        rng = spawn_many(seed, 1)[0]
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(16)
        tree = ActiveTree(PathTree(0.2, net.graph), threshold=1)
        # activate two layers like the figure's bold subtree
        tree.active |= {(0,), (1,), (0, 0), (0, 1), (1, 0), (1, 1)}
        rows: List[Dict] = []
        for addr in sorted(tree.active, key=lambda a: (len(a), a)):
            pos = float(tree.tree.position(addr))
            server = net.segments.cover_point(pos)
            rows.append({"node": "".join(map(str, addr)) or "root",
                         "position": round(pos, 4),
                         "server_segment_start": round(float(server), 4)})
        # every active node maps to exactly one server; multiple nodes may
        # share a server (the figure's dashed many-to-one arrows)
        servers = {r["server_segment_start"] for r in rows}
        checks = {
            "every active node covered by exactly one server": len(rows)
            == tree.size(),
            "several tree nodes can share a server (Lemma 3.5's B_v)": len(servers)
            <= len(rows),
            "tree edges connect network neighbours": all(
                net.are_neighbors(
                    net.segments.cover_point(float(tree.tree.position(a))),
                    net.segments.cover_point(float(tree.tree.position(a[:-1]))),
                )
                for a in tree.active
                if a != ()
            ),
        }
        return ExperimentResult("F3", "Figure 3 — active tree mapped to servers",
                                "bold tree on I, dashed mapping to segments",
                                rows, checks)

    return timed(body)


@register("F4")
def figure4(seed: int = 104, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        rng = spawn_many(seed, 1)[0]
        net = OverlappingDHNetwork(128, rng)
        src = net.points[5]
        target = 0.77
        path = canonical_path(net, src, target)
        rows = []
        layer_sizes = []
        for k, point in enumerate(path):
            covers = net.covers(point)
            layer_sizes.append(len(covers))
            rows.append({"hop": k, "point": round(float(point), 4),
                         "covers": len(covers)})
        logn = math.log2(net.n)
        checks = {
            "message passes through Θ(log n) covers at every hop": min(layer_sizes)
            >= logn / 4
            and max(layer_sizes) <= 4 * logn,
            "path length ≤ log n + O(1)": len(path) - 1 <= logn + 3,
        }
        return ExperimentResult("F4", "Figure 4 — flooding through all covers",
                                "the message is sent through all servers covering the path",
                                rows, checks)

    return timed(body)
