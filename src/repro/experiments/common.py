"""Experiment harness plumbing: results, registry, formatting.

Every experiment module registers a ``run(seed, quick)`` callable that
returns an :class:`ExperimentResult` — a set of measured rows plus the
paper's claim and a pass/fail verdict, so EXPERIMENTS.md can be
regenerated mechanically (``python -m repro.cli run all``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

__all__ = ["ExperimentResult", "register", "get_experiment", "all_experiments",
           "format_rows"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment (one table/figure/theorem reproduction)."""

    experiment: str
    title: str
    paper_claim: str
    rows: List[Dict] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: str = ""
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return all(self.checks.values()) if self.checks else True

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "paper_claim": self.paper_claim,
                "rows": self.rows,
                "checks": self.checks,
                "passed": self.passed,
                "notes": self.notes,
                "seconds": round(self.seconds, 2),
            },
            indent=2,
            default=str,
        )

    def render(self) -> str:
        lines = [
            f"== {self.experiment}: {self.title} ==",
            f"paper: {self.paper_claim}",
        ]
        if self.rows:
            lines.append(format_rows(self.rows))
        for name, ok in self.checks.items():
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        lines.append(f"  ({self.seconds:.1f}s)")
        return "\n".join(lines)


def format_rows(rows: Sequence[Dict]) -> str:
    """Plain-text table of dict rows (stable column order from first row)."""
    if not rows:
        return "(no rows)"
    cols = list(rows[0].keys())

    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    widths = {c: max(len(c), *(len(fmt(r.get(c, ""))) for r in rows)) for c in cols}
    header = "  ".join(c.ljust(widths[c]) for c in cols)
    sep = "  ".join("-" * widths[c] for c in cols)
    body = [
        "  ".join(fmt(r.get(c, "")).ljust(widths[c]) for c in cols) for r in rows
    ]
    return "\n".join([header, sep, *body])


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str):
    """Decorator: register ``fn(seed=..., quick=...)`` under an id like E1."""

    def deco(fn: Callable[..., ExperimentResult]):
        _REGISTRY[name.upper()] = fn
        return fn

    return deco


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; have {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def all_experiments() -> Dict[str, Callable[..., ExperimentResult]]:
    return dict(sorted(_REGISTRY.items()))


def timed(fn: Callable[[], ExperimentResult]) -> ExperimentResult:
    t0 = time.perf_counter()
    res = fn()
    res.seconds = time.perf_counter() - t0
    return res
