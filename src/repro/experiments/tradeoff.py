"""E6 — degree / path-length trade-off (Theorem 2.13, Table 1 last row).

Sweeping the alphabet size Δ at fixed n: a smooth degree-Δ
discretization must show degree Θ(Δ) and path length Θ(log_Δ n) — the
Moore-bound-optimal trade-off the paper claims as a headline advantage
("degree d guarantees a path length of O(log_d n)").  Congestion should
*fall* as Δ grows (§2.3's closing remark).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..balance import MultipleChoice
from ..core import CongestionCounter, DistanceHalvingNetwork, fast_lookup
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("E6")
def run(seed: int = 6, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 512 if quick else 1024
        lookups = 600 if quick else 2500
        deltas = [2, 4, 8, 16] if quick else [2, 4, 8, 16, 32]
        rows: List[Dict] = []
        ratios: List[float] = []
        congs: List[float] = []
        degs: List[float] = []
        for delta in deltas:
            rng, route = spawn_many(seed * 23 + delta, 2)
            net = DistanceHalvingNetwork(delta=delta, rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            pts = list(net.points())
            counter = CongestionCounter()
            ts = []
            for _ in range(lookups):
                src = pts[int(route.integers(n))]
                res = fast_lookup(net, src, float(route.random()))
                ts.append(res.t)
                counter.record(res)
            mean_t = float(np.mean(ts))
            expected = math.log(n, delta)
            ratios.append(mean_t / expected)
            congs.append(counter.max_congestion())
            deg = net.average_degree()
            degs.append(deg)
            rows.append(
                {
                    "delta": delta,
                    "mean_path": round(mean_t, 2),
                    "log_delta_n": round(expected, 2),
                    "path/log_delta_n": round(mean_t / expected, 2),
                    "avg_degree": round(deg, 1),
                    "deg/delta": round(deg / delta, 2),
                    "max_congestion": round(counter.max_congestion(), 4),
                }
            )
        checks = {
            "Thm 2.13: path = Θ(log_Δ n) — ratio within [0.5, 2.5] for all Δ": all(
                0.5 <= r <= 2.5 for r in ratios
            ),
            "degree = Θ(Δ): avg degree / Δ within [0.5, 8]": all(
                0.5 <= d / dl <= 8 for d, dl in zip(degs, deltas)
            ),
            # max-congestion saturates at the segment-length skew for very
            # large Δ (the owner is visited once per lookup regardless), so
            # compare Δ=2 against the mid-range Δ where path length still
            # dominates the maximum.
            "congestion decreases with Δ (§2.3, Δ=2 → Δ=8)": congs[2] < congs[0],
            "path decreases with Δ": rows[-1]["mean_path"] < rows[0]["mean_path"],
        }
        return ExperimentResult(
            experiment="E6",
            title="Degree / path-length optimality (Thm 2.13)",
            paper_claim="degree Θ(Δ) ⇒ path Θ(log_Δ n); congestion Θ(log_Δ n / n)",
            rows=rows,
            checks=checks,
            notes=f"n = {n}, {lookups} fast lookups per Δ",
        )

    return timed(body)
