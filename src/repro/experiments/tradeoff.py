"""E6 — degree / path-length trade-off (Theorem 2.13, Table 1 last row).

Sweeping the alphabet size Δ at fixed n: a smooth degree-Δ
discretization must show degree Θ(Δ) and path length Θ(log_Δ n) — the
Moore-bound-optimal trade-off the paper claims as a headline advantage
("degree d guarantees a path length of O(log_d n)").  Congestion should
*fall* as Δ grows (§2.3's closing remark).

The sweep routes through the vectorized batch engine
(``net.compile_router().batch_fast_lookup``) so the full run measures
10^5 lookups per Δ at n = 2^14, and a cross-topology frontier section
places the same-size Chord / small-world / Viceroy rows (measured on
*their* batch routers) against the DH sweep: constant-degree DH must
undercut the small-world path at comparable linkage, and stay within a
constant factor of Chord's path on a fraction of its links.
"""

from __future__ import annotations

import math
from typing import Dict, List


from ..balance import MultipleChoice
from ..baselines import (
    ChordNetwork,
    KleinbergRing,
    ViceroyNetwork,
    measure_scheme_batch,
)
from ..core import BatchCongestion, DistanceHalvingNetwork
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("E6")
def run(seed: int = 6, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 512 if quick else 16384
        lookups = 600 if quick else 100_000
        deltas = [2, 4, 8, 16] if quick else [2, 4, 8, 16, 32]
        rows: List[Dict] = []
        ratios: List[float] = []
        congs: List[float] = []
        degs: List[float] = []
        paths: List[float] = []
        for delta in deltas:
            rng, route = spawn_many(seed * 23 + delta, 2)
            net = DistanceHalvingNetwork(delta=delta, rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            router = net.compile_router()
            src = router.points[route.integers(n, size=lookups)]
            tgt = route.random(lookups)
            res = router.batch_fast_lookup(src, tgt, keep_paths="csr")
            cong = BatchCongestion()
            cong.record_batch(res)
            mean_t = float(res.t.mean())
            expected = math.log(n, delta)
            ratios.append(mean_t / expected)
            congs.append(cong.max_congestion())
            deg = net.average_degree()
            degs.append(deg)
            paths.append(mean_t)
            rows.append(
                {
                    "scheme": f"dh(Δ={delta})",
                    "mean_path": round(mean_t, 2),
                    "log_delta_n": round(expected, 2),
                    "path/log_delta_n": round(mean_t / expected, 2),
                    "avg_degree": round(deg, 1),
                    "deg/delta": round(deg / delta, 2),
                    "max_congestion": round(cong.max_congestion(), 5),
                }
            )
        # cross-topology frontier at the same n: where do the Table 1
        # competitors sit relative to the DH sweep?
        frontier: Dict[str, Dict] = {}
        rngs = spawn_many(seed * 41 + n, 4)
        for i, net in enumerate(
            [
                ChordNetwork(n, rngs[0]),
                KleinbergRing(n, rngs[1]),
                ViceroyNetwork(n, rngs[2]),
            ]
        ):
            m = measure_scheme_batch(
                net, spawn_many(seed * 57 + n + i, 1)[0], lookups=lookups
            )
            frontier[m.scheme] = m.as_dict()
            rows.append(
                {
                    "scheme": m.scheme,
                    "mean_path": round(m.mean_path, 2),
                    "log_delta_n": "",
                    "path/log_delta_n": "",
                    "avg_degree": round(m.mean_degree, 1),
                    "deg/delta": "",
                    "max_congestion": round(m.max_congestion, 5),
                }
            )
        checks = {
            "Thm 2.13: path = Θ(log_Δ n) — ratio within [0.5, 2.5] for all Δ": all(
                0.5 <= r <= 2.5 for r in ratios
            ),
            "degree = Θ(Δ): avg degree / Δ within [0.5, 8]": all(
                0.5 <= d / dl <= 8 for d, dl in zip(degs, deltas)
            ),
            # max-congestion saturates at the segment-length skew for very
            # large Δ (the owner is visited once per lookup regardless), so
            # compare Δ=2 against the mid-range Δ where path length still
            # dominates the maximum.
            "congestion decreases with Δ (§2.3, Δ=2 → Δ=8)": congs[2] < congs[0],
            "path decreases with Δ": paths[-1] < paths[0],
            # frontier: constant-degree DH(Δ=2) undercuts the other
            # constant-degree navigable design's log² n path …
            "frontier: DH(Δ=2) path below small-world's": (
                paths[0] < frontier["small-world"]["mean_path"]
            ),
            # … and trades ≤ 3x Chord's path for strictly fewer links
            "frontier: DH(Δ=2) within 3x Chord path on fewer links": (
                degs[0] < frontier["chord"]["mean_degree"]
                and paths[0] <= 3 * frontier["chord"]["mean_path"]
            ),
        }
        return ExperimentResult(
            experiment="E6",
            title="Degree / path-length optimality (Thm 2.13)",
            paper_claim="degree Θ(Δ) ⇒ path Θ(log_Δ n); congestion Θ(log_Δ n / n)",
            rows=rows,
            checks=checks,
            notes=(
                f"n = {n}, {lookups} batch fast lookups per Δ; frontier rows "
                "measured on each competitor's own batch router"
            ),
        )

    return timed(body)
