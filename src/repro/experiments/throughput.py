"""X3 — batch-lookup throughput (vectorized engine vs scalar loop).

Not a paper artefact: an extension experiment for the roadmap's scaling
goal.  The continuous-discrete scheme routes a batch of lookups with one
closed-form walk evaluation plus one ``np.searchsorted`` per routing
level (:mod:`repro.core.batch`), so lookups/sec should exceed the scalar
per-hop Python loop by an order of magnitude while remaining
*bit-identical* — owners, walk parameters and hop counts are
parity-checked on a scalar subsample in the same run.

The measurement helper :func:`measure_throughput` is shared by this
experiment, ``benchmarks/bench_throughput.py`` and the
``bench-throughput`` CLI subcommand.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional


from ..balance import MultipleChoice
from ..core import DistanceHalvingNetwork, lookup_many
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed

__all__ = ["measure_throughput", "format_throughput_report"]


def measure_throughput(
    n: int = 4096,
    lookups: int = 100_000,
    seed: int = 0,
    scalar_sample: int = 2000,
    algorithm: str = "fast",
    delta: int = 2,
    net: Optional[DistanceHalvingNetwork] = None,
    workers: int = 1,
) -> Dict:
    """Route ``lookups`` random pairs in bulk and a scalar subsample.

    Builds (or reuses) an ``n``-server Multiple-Choice-balanced network,
    compiles its :class:`~repro.core.batch.BatchRouter`, times the batch
    engine on the whole workload and the scalar engine on the first
    ``scalar_sample`` pairs, and cross-checks owner / walk parameter /
    hop count on that subsample.  For ``algorithm='dh'`` both engines
    are driven by the same explicit digit strings so the comparison is
    bit-for-bit.  Returns a dict of rates, the speedup, and the parity
    verdict.

    When a prebuilt ``net`` is supplied, the construction parameters
    ``n``, ``delta`` and the Multiple-Choice selector are ignored — the
    network is measured as-is (the reported ``n``/``rho`` come from it).

    ``workers > 1`` routes the bulk workload through the shared-memory
    sharded backend (:class:`~repro.core.shard.ShardedExecutor`); the
    pool spin-up and snapshot export happen *before* the timed window,
    and the results (and thus the scalar parity check) are bit-identical
    to the in-process engine by construction.
    """
    if algorithm not in ("fast", "dh"):
        raise ValueError(f"unknown algorithm {algorithm!r}; use 'fast' or 'dh'")
    if net is not None:
        n = net.n  # resolve before seeding so the dead param can't skew it
    build_rng, route = spawn_many(seed * 17 + n, 2)
    if net is None:
        net = DistanceHalvingNetwork(delta=delta, rng=build_rng)
        net.populate(n, selector=MultipleChoice(t=4))

    t0 = time.perf_counter()
    router = net.compile_router(with_adjacency=(algorithm == "dh"))
    compile_secs = time.perf_counter() - t0

    pts = net.segments.as_array()
    sources = pts[route.integers(0, n, size=lookups)]
    targets = route.random(lookups)
    m = min(scalar_sample, lookups)
    taus: Optional[List[List[int]]] = None
    tau_arr = None
    if algorithm == "dh":
        # fixed digit strings make batch and scalar bit-comparable; 64
        # digits is far beyond the Theorem 2.8 walk length at any tested n
        tau_arr = route.integers(0, net.delta, size=(lookups, 64))
        taus = [list(tau_arr[i]) for i in range(m)]

    # pool spin-up + shared-memory export stay outside the timed window
    executor = router.sharded_executor(workers) if workers > 1 else None
    try:
        t0 = time.perf_counter()
        if algorithm == "fast":
            batch = router.lookup_batch(sources, targets, workers=workers)
        elif executor is not None:
            batch = executor.batch_dh_lookup(sources, targets, tau_arr)
        else:
            batch = router.batch_dh_lookup(sources, targets, tau=tau_arr)
        batch_secs = time.perf_counter() - t0
    finally:
        if executor is not None:
            router.close_executor()

    t0 = time.perf_counter()
    scalar = lookup_many(
        net, sources[:m], targets[:m], algorithm=algorithm, taus=taus
    )
    scalar_secs = time.perf_counter() - t0

    parity = all(
        r.owner == batch.owner[i]
        and r.t == batch.t[i]
        and r.hops == batch.hops[i]
        for i, r in enumerate(scalar)
    )
    batch_rate = lookups / batch_secs if batch_secs > 0 else math.inf
    scalar_rate = m / scalar_secs if scalar_secs > 0 else math.inf
    return {
        "algorithm": algorithm,
        "n": n,
        "rho": float(net.smoothness()),
        "lookups": lookups,
        "workers": workers,
        "scalar_sample": m,
        "compile_secs": compile_secs,
        "batch_secs": batch_secs,
        "scalar_secs": scalar_secs,
        "batch_rate": batch_rate,
        "scalar_rate": scalar_rate,
        "speedup": batch_rate / scalar_rate if scalar_rate > 0 else math.inf,
        "parity_ok": parity,
        "mean_hops": float(batch.hops.mean()),
        "max_t": int(batch.t.max()) if lookups else 0,
    }


def format_throughput_report(result: Dict) -> str:
    """Human-readable multi-line summary of one measurement dict."""
    lines = [
        f"network: n={result['n']}  rho={result['rho']:.2f}  "
        f"algorithm={result['algorithm']}  "
        f"(router compiled in {result['compile_secs']:.3f}s)",
        f"batch : {result['lookups']:>8} lookups in {result['batch_secs']:.3f}s"
        f"  = {result['batch_rate']:>12,.0f} lookups/sec",
        f"scalar: {result['scalar_sample']:>8} lookups in "
        f"{result['scalar_secs']:.3f}s  = {result['scalar_rate']:>12,.0f} "
        f"lookups/sec",
        f"speedup: {result['speedup']:.1f}x   mean hops: "
        f"{result['mean_hops']:.2f}   max walk t: {result['max_t']}",
        f"parity (owner/t/hops on scalar sample): "
        f"{'PASS' if result['parity_ok'] else 'FAIL'}",
    ]
    return "\n".join(lines)


@register("X3")
def run(seed: int = 16, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [256, 1024] if quick else [256, 1024, 4096]
        lookups = 20_000 if quick else 100_000
        sample = 300 if quick else 1000
        rows = []
        checks: Dict[str, bool] = {}
        parity_ok = True
        speedups = []
        for n in sizes:
            res = measure_throughput(
                n=n, lookups=lookups, seed=seed, scalar_sample=sample
            )
            parity_ok &= res["parity_ok"]
            speedups.append(res["speedup"])
            rows.append(
                {
                    "n": n,
                    "lookups": lookups,
                    "batch_rate": round(res["batch_rate"]),
                    "scalar_rate": round(res["scalar_rate"]),
                    "speedup": round(res["speedup"], 1),
                    "mean_hops": round(res["mean_hops"], 2),
                    "parity": "ok" if res["parity_ok"] else "MISMATCH",
                }
            )
        checks["batch/scalar parity (owner, t, hops) at every size"] = parity_ok
        floor = 2.0 if quick else 5.0
        checks[
            f"vectorized speedup ≥ {floor:g}x at n={sizes[-1]} "
            f"(got {speedups[-1]:.1f}x)"
        ] = speedups[-1] >= floor
        return ExperimentResult(
            experiment="X3",
            title="Batch-lookup throughput (vectorized engine)",
            paper_claim="extension: bulk routing, one searchsorted per level; "
            "bit-identical to the scalar §2.2 algorithms",
            rows=rows,
            checks=checks,
        )

    return timed(body)
