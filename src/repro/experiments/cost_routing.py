"""X6 — cost-aware covering-edge routing (P4P/ALTO-style selection).

Observation 2.3 makes the phase-I digit of the two-phase lookup a
**free** choice: the distance to the target's image halves every step
whatever digit is taken, so the router may pick among the Δ covering
edges (or, on the §6 overlapping DHT, among the Θ(log n) alive covers
of the next canonical point) by *network cost* without touching the
O(log n) hop bound.  This experiment measures that trade on a synthetic
ISP topology (:class:`~repro.peer.costmap.CostMap`): every server gets
a hashed ISP label and coordinates, intra-ISP edges are cheap, inter-ISP
edges cost 1–10.

Three policies route the *same* workload with the *same* per-hop
uniforms (:mod:`repro.peer.policy`):

* ``uniform`` — the paper's rule, cost-blind (the control column);
* ``greedy`` — always the cheapest alive cover;
* ``weighted`` — softmin over costs at a temperature (the tunable
  middle ground).

Measured per policy: mean cross-ISP hops per lookup, mean path cost,
mean hops (the stretch guard) and max server load.  A scalar-replay
sub-sample (:func:`~repro.faults.lookup_ft.simple_lookup` with the same
oracle/uniforms) must be bit-identical to the batch, and a core-engine
cell replays :meth:`~repro.core.batch.BatchRouter.batch_cost_dh_lookup`
digits through the plain ``tau=`` hook — the recorded ``tau_used`` must
reproduce the routed paths bit-for-bit.

The measurement helper :func:`measure_cost_routing` is shared by this
experiment, ``benchmarks/bench_cost.py`` and the ``bench-cost`` CLI
subcommand.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

import numpy as np

from ..core import DistanceHalvingNetwork
from ..core.lookup import compress_path
from ..faults import FTBatchEngine, OverlappingDHNetwork, simple_lookup
from ..peer import (
    CostAwareBatchRouter,
    CostMap,
    CostOracle,
    cross_isp_counts,
    path_cost_totals,
)
from ..sim.rng import spawn_many
from ..sim.workload import DH_TAU_DIGITS
from .common import ExperimentResult, register, timed
from .faults_exp import FT_CHOICE_DIGITS

__all__ = ["measure_cost_routing", "format_cost_report"]


def _scalar_cost_replay(net, batch, sources, targets, choices, oracle,
                        policy, temperature) -> bool:
    """Replay a sub-workload through the scalar walk; True iff bit-equal."""
    for i in range(targets.size):
        res = simple_lookup(net, float(sources[i]), "probe",
                            target=float(targets[i]),
                            choices=list(choices[i]), oracle=oracle,
                            policy=policy, temperature=temperature)
        if not (bool(res.success) == bool(batch.success[i])
                and res.messages == int(batch.messages[i])
                and res.parallel_time == int(batch.parallel_time[i])
                and compress_path(res.servers) == batch.server_path(i)):
            return False
    return True


def _core_cell(cost_map: CostMap, core_n: int, core_pairs: int, seed: int,
               workers: int) -> Dict:
    """Route the core-engine cell: cost-dh vs uniform + tau replay."""
    build_rng, route = spawn_many(seed * 59 + core_n, 2)
    dnet = DistanceHalvingNetwork(rng=build_rng)
    dnet.populate(core_n)
    router = CostAwareBatchRouter(dnet, cost_map, auto_refresh=True)
    pts = dnet.segments.as_array()
    src = pts[route.integers(0, dnet.n, size=core_pairs)]
    tgt = route.random(core_pairs)
    u = route.random((core_pairs, DH_TAU_DIGITS))

    greedy = router.batch_cost_dh_lookup(src, tgt, policy="greedy",
                                         keep_paths="csr")
    unif = router.batch_cost_dh_lookup(src, tgt, choices=u,
                                       policy="uniform", keep_paths="csr")
    # the recorded digits through the plain replay hook must reproduce
    # the routed batch bit-for-bit (Observation 2.3: any digit string
    # converges — these are just the ones the cost policy took)
    replay = router.batch_dh_lookup(src, tgt, tau=greedy.tau_used,
                                    keep_paths="csr")
    replay_ok = (np.array_equal(greedy.owner_idx, replay.owner_idx)
                 and np.array_equal(greedy.hops, replay.hops)
                 and np.array_equal(greedy.path_servers, replay.path_servers)
                 and np.array_equal(greedy.path_offsets, replay.path_offsets))

    shard_ok = True
    if workers > 1:
        try:
            sharded = router.sharded_executor(workers).batch_cost_dh_lookup(
                src, tgt, None, policy="greedy", keep_paths="csr")
            shard_ok = (
                np.array_equal(greedy.owner_idx, sharded.owner_idx)
                and np.array_equal(greedy.hops, sharded.hops)
                and np.array_equal(greedy.tau_used, sharded.tau_used)
                and np.array_equal(greedy.path_servers, sharded.path_servers))
        finally:
            router.close_executor()

    rows = {}
    for name, res in (("uniform", unif), ("greedy", greedy)):
        srv, off = res.path_servers, res.path_offsets
        rows[name] = {
            "cross_isp": float(cross_isp_counts(router.cost_isp, srv,
                                                off).mean()),
            "hops": float(res.hops.mean()),
        }
    cross_u = rows["uniform"]["cross_isp"]
    cross_g = rows["greedy"]["cross_isp"]
    return {
        "core_n": dnet.n,
        "core_pairs": core_pairs,
        "core_rows": rows,
        "core_replay_ok": bool(replay_ok),
        "core_shard_parity_ok": bool(shard_ok),
        "core_xisp_reduction": (1.0 - cross_g / cross_u) if cross_u > 0
        else 0.0,
        "core_stretch": (rows["greedy"]["hops"] / rows["uniform"]["hops"]
                         if rows["uniform"]["hops"] > 0 else 1.0),
    }


def measure_cost_routing(
    n: int = 16384,
    pairs: int = 100_000,
    seed: int = 0,
    isps: int = 8,
    temperature: float = 1.0,
    scalar_sample: int = 200,
    core_n: int = 4096,
    core_pairs: int = 50_000,
    workers: int = 1,
    net: Optional[OverlappingDHNetwork] = None,
    engine: Optional[FTBatchEngine] = None,
) -> Dict:
    """Route one workload under all three covering-edge policies.

    Builds (or reuses) an ``n``-server overlapping network plus a
    ``isps``-ISP synthetic :class:`CostMap`, samples ``pairs``
    (source, target) pairs with shared per-hop uniforms, and routes the
    same batch under ``uniform`` / ``greedy`` / ``weighted`` selection
    with CSR path emission.  The first ``scalar_sample`` pairs of the
    greedy and weighted batches are replayed through the scalar
    cost-aware walk and must match bit-for-bit.  A separate core-engine
    cell (``core_n`` servers, ``core_pairs`` pairs) runs
    ``batch_cost_dh_lookup`` and verifies the recorded ``tau_used``
    digits replay bit-identically through the plain ``tau=`` hook —
    sharded too, when ``workers > 1``.  Returns per-policy traffic
    metrics, the greedy cross-ISP reduction and hop stretch vs uniform,
    throughput rates and every parity verdict.
    """
    if net is None and engine is not None:
        net = engine.net
    if net is not None:
        n = net.n
    build_rng, cost_rng, route = spawn_many(seed * 53 + n, 3)
    if net is None:
        net = OverlappingDHNetwork(n, build_rng)
    if engine is None:
        engine = FTBatchEngine(net)
    cost_map = CostMap.synthetic(n_isps=isps, rng=cost_rng)
    oracle = CostOracle(net.points_array, cost_map)

    sources = net.points_array[route.integers(0, n, size=pairs)]
    targets = route.random(pairs)
    choices = route.random((pairs, FT_CHOICE_DIGITS))

    # untimed warmup: first-touch page faults say nothing about steady state
    warm = min(2000, pairs)
    engine.batch_simple_lookup(sources[:warm], targets[:warm],
                               choices=choices[:warm], oracle=oracle,
                               policy="weighted", temperature=temperature)

    per_policy: Dict[str, Dict] = {}
    batches: Dict[str, object] = {}
    for policy in ("uniform", "greedy", "weighted"):
        t0 = time.perf_counter()
        batch = engine.batch_simple_lookup(
            sources, targets, choices=choices, keep_paths="csr",
            oracle=None if policy == "uniform" else oracle,
            policy=policy, temperature=temperature)
        secs = time.perf_counter() - t0
        srv, off = batch.path_servers, batch.path_offsets
        per_policy[policy] = {
            "cross_isp": float(cross_isp_counts(oracle.isp, srv, off).mean()),
            "path_cost": float(path_cost_totals(oracle, srv, off).mean()),
            "hops": float(batch.hops.mean()),
            "max_load": int(np.bincount(srv, minlength=n).max()),
            "secs": secs,
        }
        batches[policy] = batch

    cross_u = per_policy["uniform"]["cross_isp"]
    cross_g = per_policy["greedy"]["cross_isp"]
    cross_w = per_policy["weighted"]["cross_isp"]
    hops_u = per_policy["uniform"]["hops"]
    hops_g = per_policy["greedy"]["hops"]

    m = min(scalar_sample, pairs)
    parity = True
    scalar_secs = 0.0
    if m:
        t0 = time.perf_counter()
        for policy in ("greedy", "weighted"):
            parity &= _scalar_cost_replay(
                net, batches[policy], sources[:m], targets[:m], choices[:m],
                oracle, policy, temperature)
        scalar_secs = time.perf_counter() - t0

    batch_secs = per_policy["weighted"]["secs"]
    batch_rate = pairs / batch_secs if batch_secs > 0 else math.inf
    scalar_rate = 2 * m / scalar_secs if scalar_secs > 0 else math.inf

    out = {
        "n": n,
        "pairs": pairs,
        "isps": isps,
        "temperature": float(temperature),
        "scalar_sample": m,
        "policies": per_policy,
        "xisp_reduction": (1.0 - cross_g / cross_u) if cross_u > 0 else 0.0,
        "stretch": hops_g / hops_u if hops_u > 0 else 1.0,
        "weighted_between": bool(cross_g <= cross_w + 1e-12
                                 and cross_w <= cross_u + 1e-12),
        "parity_ok": bool(parity),
        "batch_secs": batch_secs,
        "scalar_secs": scalar_secs,
        "batch_rate": batch_rate,
        "scalar_rate": scalar_rate,
        "speedup": batch_rate / scalar_rate if scalar_rate > 0 else math.inf,
        "workers": workers,
    }
    out.update(_core_cell(cost_map, core_n, core_pairs, seed, workers))
    return out


def format_cost_report(result: Dict) -> str:
    """Human-readable multi-line summary of one measurement dict."""
    lines = [
        f"network: n={result['n']}  isps={result['isps']}  "
        f"pairs={result['pairs']}  temperature={result['temperature']:g}",
    ]
    for policy, row in result["policies"].items():
        lines.append(
            f"{policy:>8}: cross-ISP/lookup {row['cross_isp']:.3f}   "
            f"path cost {row['path_cost']:.3f}   hops {row['hops']:.2f}   "
            f"max load {row['max_load']}   ({row['secs']:.3f}s)")
    lines += [
        f"greedy vs uniform: cross-ISP reduction "
        f"{result['xisp_reduction']:.1%}  at hop stretch "
        f"{result['stretch']:.3f}x",
        f"batch : {result['pairs']:>8} lookups = "
        f"{result['batch_rate']:>12,.0f} lookups/sec (weighted policy)",
        f"scalar: {2 * result['scalar_sample']:>8} replays = "
        f"{result['scalar_rate']:>12,.0f} lookups/sec   speedup "
        f"{result['speedup']:.1f}x",
        f"core cell: n={result['core_n']}  "
        f"cross-ISP reduction {result['core_xisp_reduction']:.1%}  "
        f"stretch {result['core_stretch']:.3f}x",
        f"scalar replay bit-identical (greedy + weighted): "
        f"{'PASS' if result['parity_ok'] else 'FAIL'}",
        f"core tau_used replay bit-identical: "
        f"{'PASS' if result['core_replay_ok'] else 'FAIL'}",
    ]
    if result["workers"] > 1:
        lines.append(
            f"sharded ({result['workers']} workers) bit-identical: "
            f"{'PASS' if result['core_shard_parity_ok'] else 'FAIL'}")
    return "\n".join(lines)


@register("X6")
def run_cost_routing(seed: int = 6, quick: bool = False) -> ExperimentResult:
    """Cost-aware covering-edge routing vs the paper's uniform rule."""
    def body() -> ExperimentResult:
        n = 256 if quick else 16384
        pairs = 2000 if quick else 100_000
        sample = 40 if quick else 200
        core_n = 64 if quick else 4096
        core_pairs = 500 if quick else 50_000
        res = measure_cost_routing(
            n=n, pairs=pairs, seed=seed, scalar_sample=sample,
            core_n=core_n, core_pairs=core_pairs)
        rows: List[Dict] = []
        for policy, row in res["policies"].items():
            rows.append({
                "engine": "overlap", "policy": policy,
                "cross_isp": round(row["cross_isp"], 3),
                "path_cost": round(row["path_cost"], 3),
                "hops": round(row["hops"], 2),
                "max_load": row["max_load"],
            })
        for policy, row in res["core_rows"].items():
            rows.append({
                "engine": "core", "policy": policy,
                "cross_isp": round(row["cross_isp"], 3),
                "path_cost": "", "hops": round(row["hops"], 2),
                "max_load": "",
            })
        checks = {
            "greedy cuts mean cross-ISP traffic ≥ 30% vs uniform":
                res["xisp_reduction"] >= 0.30,
            "greedy hop stretch ≤ 1.5x (Obs 2.3: digit choice is free)":
                res["stretch"] <= 1.5,
            "weighted sits between greedy and uniform":
                res["weighted_between"],
            "batch bit-identical to scalar cost-aware replay":
                res["parity_ok"],
            "core engine: recorded tau_used replays bit-identically":
                res["core_replay_ok"],
            "core engine greedy also reduces cross-ISP traffic":
                res["core_xisp_reduction"] > 0.0,
        }
        return ExperimentResult(
            experiment="X6",
            title="Cost-aware covering-edge routing (P4P/ALTO-style)",
            paper_claim="Observation 2.3: the covering-edge choice is free — "
            "cost-weighted selection keeps O(log n) hops",
            rows=rows,
            checks=checks,
            notes=f"{pairs} pairs per policy over a synthetic "
            f"{res['isps']}-ISP cost map; shared per-hop uniforms across "
            "policies; scalar + tau-replay bit-parity cross-checks",
        )

    return timed(body)
