"""X5 — day-in-the-life soak: every subsystem composed on one network.

Not a single paper artefact but the paper's *thesis*: §1 claims the
continuous-discrete approach stays correct and balanced under dynamism.
The :class:`~repro.sim.scenario.ScenarioEngine` exercises that claim
end-to-end — sustained chunked lookup streams, churn waves through the
op-journal router refresh, a Zipf flash crowd through the §3 batch
cache, §6 fail-stop/Byzantine waves with Reed-Solomon read-repair
healing, Multiple-Choice rebalancing, and a §4.1 mass departure — with
the cross-subsystem invariant checker running between phases.

The measurement helper :func:`measure_soak` is shared by this
experiment, ``benchmarks/bench_soak.py`` and the ``soak`` CLI
subcommand.  Timing wraps *around* the deterministic scenario result:
the artifact stays byte-reproducible per seed, wall-clock lives in
separate keys the CLI strips from ``--json-out``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..artifacts import to_jsonable
from ..sim.scenario import DEFAULT_CHUNK, DEFAULT_PHASES, ScenarioEngine
from .common import ExperimentResult, register, timed

__all__ = ["measure_soak", "format_soak_report", "NONDETERMINISTIC_KEYS"]

#: Result keys that vary across runs of the same seed (wall clock) —
#: excluded from ``--json-out`` artifacts so soak artifacts are
#: byte-reproducible and machine-independent.
NONDETERMINISTIC_KEYS = ("wall_seconds", "krequests_per_sec")


def measure_soak(
    n: int = 4096,
    lookups: int = 1_000_000,
    phases: str = DEFAULT_PHASES,
    chunk: int = DEFAULT_CHUNK,
    seed: int = 0,
    items: int = 24,
    invariants: bool = True,
    strict: bool = True,
    workers: int = 1,
) -> Dict:
    """Run one scripted soak; returns the scenario dict plus timing.

    Everything except the :data:`NONDETERMINISTIC_KEYS` entries is a
    pure function of the arguments — including under ``workers > 1``,
    which streams the lookup phases through the shared-memory sharded
    backend with bit-identical results (``workers`` is recorded in the
    artifact *envelope*, not the scenario dict, so the deterministic
    payload stays byte-identical across backend choices).
    """
    engine = ScenarioEngine(n=n, lookups=lookups, chunk=chunk, seed=seed,
                            items=items, invariants=invariants,
                            strict=strict, workers=workers)
    t0 = time.perf_counter()
    result = engine.run(phases)
    secs = time.perf_counter() - t0
    result["wall_seconds"] = secs
    result["krequests_per_sec"] = (result["total_requests"] / secs / 1e3
                                   if secs > 0 else 0.0)
    return result


def deterministic_payload(result: Dict) -> Dict:
    """The artifact view: the result minus its wall-clock keys.

    Passed through :func:`repro.artifacts.to_jsonable` so NumPy scalars
    and arrays serialize identically wherever the payload is dumped —
    the same converter the shared artifact writer uses.
    """
    return to_jsonable({k: v for k, v in result.items()
                        if k not in NONDETERMINISTIC_KEYS})


def format_soak_report(result: Dict) -> str:
    """Human-readable multi-line summary of one soak run."""
    from .common import format_rows

    stats = result["stats"]
    checks = result["invariant_checks"]
    failed = [r for r in result["invariants"] if not r["ok"]]
    lines = [
        f"soak: n={result['n']} -> {result['final_n']}  "
        f"seed={result['seed']}  chunk={result['chunk']}  "
        f"{len(result['phases'])} phases",
        format_rows(result["rows"]),
        f"requests: {result['total_requests']} total  "
        f"({int(stats['route_lookups'])} routed + "
        f"{int(stats['cache_requests'])} cached + "
        f"{int(stats['ft_pairs'])} fault-tolerant)  "
        f"mean hops {stats['mean_hops']:.2f}",
        f"faults: ft success rate {stats['ft_success_rate']:.3f}  "
        f"alive fraction {result['ft_alive_fraction']:.2f}  "
        f"healing: {int(stats['repairs'])} items repaired, "
        f"{int(stats['shares_rebuilt'])} shares rebuilt, "
        f"{int(stats['items_lost'])} lost",
        f"churn: {int(stats['churn_ops'])} membership ops  "
        f"smoothness max {stats['smoothness_max']:.1f}",
        f"invariants: {checks - len(failed)}/{checks} checks passed"
        + ("" if not failed else "  FAILED: " + ", ".join(
            f"{r['phase']}/{r['check']}" for r in failed)),
    ]
    if "wall_seconds" in result:
        lines.append(
            f"wall: {result['wall_seconds']:.2f}s  "
            f"{result['krequests_per_sec']:.1f}k requests/sec")
    return "\n".join(lines)


@register("X5")
def run(seed: int = 29, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 1024 if quick else 4096
        lookups = 20_000 if quick else 200_000
        chunk = 1 << 13 if quick else 1 << 15
        res = measure_soak(n=n, lookups=lookups, chunk=chunk, seed=seed,
                           strict=False)
        checks: Dict[str, bool] = {
            "between-phase invariants all pass (owners, merge identity, "
            "erasure recoverability, cache trees)": res["invariants_ok"],
            "self-healing keeps every item decodable (0 lost)":
                res["healing_ok"],
            "scenario covers >= 6 phase kinds":
                len(set(res["phases"])) >= 6,
            "fault-tolerant success rate >= 0.9":
                res["stats"]["ft_success_rate"] >= 0.9,
            "accumulator memory stays O(chunk): requests >> chunk":
                res["total_requests"] >= 3 * chunk,
        }
        return ExperimentResult(
            experiment="X5",
            title="Day-in-the-life soak (all subsystems, one live network)",
            paper_claim="§1: the continuous-discrete approach stays correct "
            "and balanced under dynamism — churn, faults, flash crowds and "
            "rebalancing composed, with §6.2 erasure shares self-healing",
            rows=res["rows"],
            checks=checks,
        )

    return timed(body)
