"""Multicore shard shoot-out: sharded executor vs the in-process engine.

The sharded backend (:class:`~repro.core.shard.ShardedExecutor`) slices a
batch across worker processes that route over shared-memory views of the
router's frozen snapshot columns and merges the per-shard results through
the same associative accumulator semantics the single-process engine
uses.  Because the per-lane routing math is elementwise, slicing +
merging must be **bit-identical** to routing the batch in-process — this
module measures both backends on the same chunked random-pair workload
and verifies exactly that: the merged :class:`BatchCongestion` summary
and the hop histogram must match bit-for-bit, always, on any machine.

The *gain* gate is separate: ``shard_gain`` (single-process seconds over
sharded seconds) is only meaningful when the machine actually has at
least ``workers`` CPUs, so the measurement reports
``speedup_gate_engaged`` and the CLI/CI only enforce ``--min-speedup``
when it is set.  On a 1-CPU container the parity gate still runs at full
strength while the gain number is recorded as informational.

Shared by ``benchmarks/bench_shard.py`` and the ``bench-shard`` CLI
subcommand.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, Optional

import numpy as np

from ..balance import MultipleChoice
from ..core import BatchCongestion, DistanceHalvingNetwork
from ..sim.rng import spawn_many

__all__ = ["measure_shard", "format_shard_report"]


def _grow_hist(hist: np.ndarray, hops: np.ndarray) -> np.ndarray:
    """Accumulate a chunk's hop counts into a growable histogram."""
    counts = np.bincount(np.asarray(hops, dtype=np.int64))
    if counts.size > hist.size:
        counts[: hist.size] += hist
        return counts
    hist[: counts.size] += counts
    return hist


def _drive(lookup, sources: np.ndarray, targets: np.ndarray,
           chunk: int) -> tuple:
    """Route the workload chunk-by-chunk through one backend.

    Returns ``(seconds, BatchCongestion, hop_histogram)``.  Chunking is
    part of the measured protocol (it is how the soak engine and real
    workloads arrive), and both backends get the *same* chunk boundaries
    so their merged accumulators see identical batch splits.
    """
    cong = BatchCongestion()
    hist = np.zeros(1, dtype=np.int64)
    t0 = time.perf_counter()
    for lo in range(0, sources.size, chunk):
        res = lookup(sources[lo:lo + chunk], targets[lo:lo + chunk],
                     keep_paths="csr")
        cong.record_batch(res)
        hist = _grow_hist(hist, res.hops)
    secs = time.perf_counter() - t0
    return secs, cong, hist


def measure_shard(
    n: int = 1 << 18,
    lookups: int = 1_000_000,
    workers: int = 4,
    seed: int = 0,
    chunk: int = 1 << 17,
    net: Optional[DistanceHalvingNetwork] = None,
) -> Dict:
    """Route the same chunked workload single-process and sharded.

    Builds (or reuses) an ``n``-server Multiple-Choice-balanced network,
    compiles one router, and drives ``lookups`` random (server, point)
    pairs through ``router.batch_fast_lookup`` in-process and through
    ``router.lookup_batch(..., workers=workers)`` — the shared-memory
    sharded backend — with identical chunk boundaries.  ``parity_ok``
    requires the merged congestion summaries *and* hop histograms to be
    bit-identical; ``shard_gain`` is the wall-clock ratio, enforced
    upstream only when ``speedup_gate_engaged`` (machine has >=
    ``workers`` CPUs) is true.
    """
    if workers < 2:
        raise ValueError("measure_shard needs workers >= 2")
    if net is not None:
        n = net.n
    if n < 8:
        raise ValueError("measure_shard needs n >= 8")
    build_rng, route = spawn_many(seed * 43 + n, 2)
    if net is None:
        net = DistanceHalvingNetwork(rng=build_rng)
        net.populate(n, selector=MultipleChoice(t=4))

    t0 = time.perf_counter()
    router = net.router(auto_refresh=True)
    compile_secs = time.perf_counter() - t0

    pts = net.segments.as_array()
    sources = pts[route.integers(0, net.n, size=lookups)]
    targets = route.random(lookups)

    # spin up the pool + shared-memory export before any timing, and
    # warm both backends so neither pays cold-process page faults inside
    # its measured window
    executor = router.sharded_executor(workers)
    warm = min(2000, lookups)
    router.batch_fast_lookup(sources[:warm], targets[:warm],
                             keep_paths="csr")
    executor.batch_fast_lookup(sources[:warm], targets[:warm],
                               keep_paths="csr")

    try:
        single_secs, single_cong, single_hist = _drive(
            router.batch_fast_lookup, sources, targets, chunk)
        shard_secs, shard_cong, shard_hist = _drive(
            executor.batch_fast_lookup, sources, targets, chunk)
    finally:
        router.close_executor()

    summary_single = single_cong.summary(net.n)
    summary_shard = shard_cong.summary(net.n)
    parity = (summary_single == summary_shard
              and np.array_equal(single_hist, shard_hist))

    single_rate = lookups / single_secs if single_secs > 0 else math.inf
    shard_rate = lookups / shard_secs if shard_secs > 0 else math.inf
    cpu_count = os.cpu_count() or 1
    return {
        "n": net.n,
        "rho": float(net.smoothness()),
        "lookups": lookups,
        "workers": workers,
        "cpu_count": cpu_count,
        "chunk": chunk,
        "compile_secs": compile_secs,
        "single_secs": single_secs,
        "sharded_secs": shard_secs,
        "single_rate": single_rate,
        "sharded_rate": shard_rate,
        # deliberately NOT named "*speedup*" / "*_rate"-gated: on boxes
        # with fewer CPUs than workers this is informational, and
        # bench-compare must not fail a build over it
        "shard_gain": single_secs / shard_secs if shard_secs > 0
        else math.inf,
        "speedup_gate_engaged": cpu_count >= workers,
        "parity_ok": bool(parity),
        "hop_hist": single_hist.tolist(),
        "max_load": summary_single["max_load"],
        "max_congestion": summary_single["max_congestion"],
        "total_messages": summary_single["total_messages"],
    }


def format_shard_report(result: Dict) -> str:
    """Human-readable multi-line summary of one measurement dict."""
    lines = [
        f"network: n={result['n']}  rho={result['rho']:.2f}  "
        f"(router compiled in {result['compile_secs']:.3f}s)",
        f"single : {result['lookups']:>8} lookups in "
        f"{result['single_secs']:.3f}s  = {result['single_rate']:>12,.0f} "
        f"lookups/sec  (chunk={result['chunk']})",
        f"sharded: {result['lookups']:>8} lookups in "
        f"{result['sharded_secs']:.3f}s  = "
        f"{result['sharded_rate']:>12,.0f} lookups/sec  "
        f"({result['workers']} workers on {result['cpu_count']} CPU(s))",
        f"gain: {result['shard_gain']:.2f}x   max_load: "
        f"{result['max_load']:.0f}   hop histogram: "
        f"{result['hop_hist']}",
        f"merged congestion summary + hop histogram bit-identical: "
        f"{'PASS' if result['parity_ok'] else 'FAIL'}",
    ]
    return "\n".join(lines)
