"""E3 — lookup path lengths (Corollary 2.5, Theorem 2.8).

Fast Lookup: walk parameter ``t ≤ log n + log ρ + 1``.
Distance Halving Lookup: hops ≤ ``2 log n + 2 log ρ`` (+O(1) junction).
The log-slope of the means across sizes must be ≈ 1 (fast) and ≈ 2
(two-phase).

Both algorithms run as whole batches on the vectorized routing spine
(``net.router(auto_refresh=True)``), whose per-lookup ``t``/``hops``
arrays feed the bound checks directly — no per-lookup Python loop —
which scales the sweep to n = 2^16 with 10^5 lookups per size.  Chord
and Koorde ride along at every size on *their* batch routers as the
log-class yardsticks: the §1.1 comparison is that the
continuous-discrete De Bruijn emulation routes in the same Θ(log n)
class as Chord and beats the direct De Bruijn emulation's hop constant.
At the smallest size a scalar replay of the same sub-workload (same dh
digit strings) must match the batch arrays element-for-element.
"""

from __future__ import annotations

import math
from typing import Dict, List


from ..balance import MultipleChoice
from ..baselines import ChordNetwork, KoordeNetwork, measure_scheme_batch
from ..core import DistanceHalvingNetwork, lookup_many
from ..sim.metrics import log_slope, summarize
from ..sim.rng import spawn_many
from ..sim.workload import DH_TAU_DIGITS, route_pairs
from .common import ExperimentResult, register, timed


@register("E3")
def run(seed: int = 3, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [64, 256, 1024] if quick else [1024, 4096, 16384, 65536]
        lookups = 600 if quick else 100_000
        rows: List[Dict] = []
        checks: Dict[str, bool] = {}
        fast_ok = dh_ok = parity_ok = True
        fast_means, dh_means = [], []
        chord_means, koorde_means = [], []
        for n in sizes:
            rng, route = spawn_many(seed * 13 + n, 2)
            net = DistanceHalvingNetwork(rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            rho = net.smoothness()
            router = net.router(auto_refresh=True, with_adjacency=True)
            pts = net.segments.as_array()
            sources = pts[route.integers(0, n, size=lookups)]
            targets = route.random(lookups)
            tau = route.integers(0, net.delta, size=(lookups, DH_TAU_DIGITS))
            fast = route_pairs(router, (sources, targets), algorithm="fast",
                               keep_paths=False)
            dh = route_pairs(router, (sources, targets), algorithm="dh",
                             tau=tau, keep_paths=False)
            fast_ok &= bool(
                (fast.t <= math.log2(n) + math.log2(rho) + 1 + 1e-9).all()
            )
            dh_ok &= bool(
                (dh.hops
                 <= 2 * math.log2(n) + 2 * math.log2(max(rho, 1.0)) + 2).all()
            )
            if n == sizes[0]:
                # element-for-element scalar cross-check on a sub-workload
                m = min(lookups, 150)
                for i, r in enumerate(lookup_many(net, sources[:m],
                                                  targets[:m])):
                    parity_ok &= (r.t == fast.t[i] and r.hops == fast.hops[i])
                scal_dh = lookup_many(net, sources[:m], targets[:m],
                                      algorithm="dh",
                                      taus=[list(row) for row in tau[:m]])
                for i, r in enumerate(scal_dh):
                    parity_ok &= (r.t == dh.t[i] and r.hops == dh.hops[i])
            # same-size log-class yardsticks on their own batch routers
            crng, krng = spawn_many(seed * 29 + n, 2)
            chord = measure_scheme_batch(
                ChordNetwork(n, crng), spawn_many(seed * 37 + n, 1)[0],
                lookups=lookups,
            )
            koorde = measure_scheme_batch(
                KoordeNetwork(n, krng), spawn_many(seed * 43 + n, 1)[0],
                lookups=lookups,
            )
            chord_means.append(chord.mean_path)
            koorde_means.append(koorde.mean_path)
            fs, ds = summarize(fast.t.tolist()), summarize(dh.hops.tolist())
            fast_means.append(fs.mean)
            dh_means.append(ds.mean)
            rows.append(
                {
                    "n": n,
                    "rho": round(rho, 2),
                    "fast_mean_t": round(fs.mean, 2),
                    "fast_max_t": fs.max,
                    "bound_fast": round(math.log2(n) + math.log2(rho) + 1, 1),
                    "dh_mean_hops": round(ds.mean, 2),
                    "dh_max_hops": ds.max,
                    "bound_dh": round(2 * math.log2(n) + 2 * math.log2(max(rho, 1)), 1),
                    "chord_hops": round(chord.mean_path, 2),
                    "koorde_hops": round(koorde.mean_path, 2),
                }
            )
        checks["Cor 2.5: fast t ≤ log n + log ρ + 1 (every lookup)"] = fast_ok
        checks["Thm 2.8: DH hops ≤ 2log n + 2log ρ (+2)"] = dh_ok
        checks[
            f"batch t/hops bit-identical to scalar engine (n={sizes[0]})"
        ] = parity_ok
        sf = log_slope(sizes, fast_means)
        sd = log_slope(sizes, dh_means)
        checks[f"fast log-slope ≈ 1 (got {sf:.2f})"] = 0.6 <= sf <= 1.4
        checks[f"DH log-slope ≈ 2 (got {sd:.2f})"] = 1.4 <= sd <= 2.6
        sc = log_slope(sizes, chord_means)
        sk = log_slope(sizes, koorde_means)
        # chord ≈ ½ hop per target bit; koorde ≈ 2 De Bruijn + 2
        # successor-realign hops per bit — both linear in log n
        checks[
            f"yardsticks in the log class (chord {sc:.2f}, koorde {sk:.2f})"
        ] = 0.3 <= sc <= 1.4 and 2.0 <= sk <= 6.0
        checks["§1.1: CD two-phase beats direct De Bruijn (Koorde) hops"] = (
            dh_means[-1] < koorde_means[-1]
        )
        return ExperimentResult(
            experiment="E3",
            title="Lookup path lengths (Cor 2.5, Thm 2.8)",
            paper_claim="fast ≤ log n + log ρ + 1; two-phase ≤ 2log n + 2log ρ",
            rows=rows,
            checks=checks,
            notes="batch-routed sweeps (vectorized engine); chord/koorde "
            "yardsticks on their batch routers; scalar cross-check at the "
            "smallest size",
        )

    return timed(body)
