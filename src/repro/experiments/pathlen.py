"""E3 — lookup path lengths (Corollary 2.5, Theorem 2.8).

Fast Lookup: walk parameter ``t ≤ log n + log ρ + 1``.
Distance Halving Lookup: hops ≤ ``2 log n + 2 log ρ`` (+O(1) junction).
Both at uniform and Multiple-Choice-balanced ids; the log-slope across
sizes must be ≈ 1 (fast) and ≈ 2 (two-phase).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..balance import MultipleChoice
from ..core import DistanceHalvingNetwork, dh_lookup, fast_lookup
from ..sim.metrics import log_slope, summarize
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("E3")
def run(seed: int = 3, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [64, 256, 1024] if quick else [64, 128, 256, 512, 1024, 2048]
        lookups = 300 if quick else 1000
        rows: List[Dict] = []
        checks: Dict[str, bool] = {}
        fast_ok = dh_ok = True
        fast_means, dh_means = [], []
        for n in sizes:
            rng, route = spawn_many(seed * 13 + n, 2)
            net = DistanceHalvingNetwork(rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            rho = net.smoothness()
            pts = list(net.points())
            f_t, d_h = [], []
            for _ in range(lookups):
                src = pts[int(route.integers(n))]
                y = float(route.random())
                f = fast_lookup(net, src, y)
                d = dh_lookup(net, src, y, route)
                f_t.append(f.t)
                d_h.append(d.hops)
                fast_ok &= f.t <= math.log2(n) + math.log2(rho) + 1 + 1e-9
                dh_ok &= d.hops <= 2 * math.log2(n) + 2 * math.log2(max(rho, 1.0)) + 2
            fs, ds = summarize(f_t), summarize(d_h)
            fast_means.append(fs.mean)
            dh_means.append(ds.mean)
            rows.append(
                {
                    "n": n,
                    "rho": round(rho, 2),
                    "fast_mean_t": round(fs.mean, 2),
                    "fast_max_t": fs.max,
                    "bound_fast": round(math.log2(n) + math.log2(rho) + 1, 1),
                    "dh_mean_hops": round(ds.mean, 2),
                    "dh_max_hops": ds.max,
                    "bound_dh": round(2 * math.log2(n) + 2 * math.log2(max(rho, 1)), 1),
                }
            )
        checks["Cor 2.5: fast t ≤ log n + log ρ + 1 (every lookup)"] = fast_ok
        checks["Thm 2.8: DH hops ≤ 2log n + 2log ρ (+2)"] = dh_ok
        sf = log_slope(sizes, fast_means)
        sd = log_slope(sizes, dh_means)
        checks[f"fast log-slope ≈ 1 (got {sf:.2f})"] = 0.6 <= sf <= 1.4
        checks[f"DH log-slope ≈ 2 (got {sd:.2f})"] = 1.4 <= sd <= 2.6
        return ExperimentResult(
            experiment="E3",
            title="Lookup path lengths (Cor 2.5, Thm 2.8)",
            paper_claim="fast ≤ log n + log ρ + 1; two-phase ≤ 2log n + 2log ρ",
            rows=rows,
            checks=checks,
        )

    return timed(body)
