"""E15 — emulating general graphs (§7, Theorem 7.1).

For each fixed-degree family and a Multiple-Choice-smooth decomposition:
guests/server ≤ ρ+1, guest-edges/host-edge ≤ ρ², host degree ≤ ρ·d, and
in the unknown-n variant degree ≤ 2dρ·log ρ; plus the real-time check
(host-computed rounds equal direct computation).
"""

from __future__ import annotations

import math
from typing import Dict, List


from ..balance import MultipleChoice
from ..core.segments import SegmentMap
from ..emulation import (
    DeBruijnFamily,
    GraphEmulator,
    RingFamily,
    ShuffleExchangeFamily,
    TorusFamily,
)
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("E15")
def run(seed: int = 15, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 128 if quick else 512
        rng, vrng = spawn_many(seed * 73, 2)
        sm = SegmentMap()
        mc = MultipleChoice(t=4)
        for _ in range(n):
            sm.insert(mc.select(sm, rng))
        rho = sm.smoothness()
        rows: List[Dict] = []
        checks: Dict[str, bool] = {}
        all_props = True
        rt_ok = True
        multi_ok = True
        for fam in (RingFamily(), TorusFamily(), DeBruijnFamily(), ShuffleExchangeFamily()):
            em = GraphEmulator(sm, fam)
            props = em.check_properties()
            all_props &= all(props.values())
            d = fam.degree_bound(em.k)
            max_deg = max(em.host_degree(p) for p in sm)
            max_guests = em.max_guests_per_server()
            mult = em.edge_multiplicity()
            max_mult = max(mult.values()) if mult else 0
            # real-time check
            values = {u: float(vrng.random()) for u in range(1 << em.k)}
            via_hosts = em.emulate_round(values)
            direct = {
                u: sum(values[v] for v in fam.neighbors(em.k, u))
                / len(fam.neighbors(em.k, u))
                for u in range(1 << em.k)
            }
            rt_ok &= all(abs(via_hosts[u] - direct[u]) < 1e-12 for u in direct)
            # unknown-n variant on a sample of servers
            bound71 = 2 * d * rho * max(1.0, math.log2(max(2.0, rho))) + d
            sample = list(sm)[:: max(1, n // 16)]
            multi_max = max(len(em.multi_level_hosts(p, rho)) for p in sample)
            multi_ok &= multi_max <= bound71
            rows.append(
                {
                    "family": fam.name,
                    "k": em.k,
                    "d": d,
                    "guests_max": max_guests,
                    "rho+1": round(rho + 1, 1),
                    "edge_mult_max": max_mult,
                    "rho²": round(rho * rho, 1),
                    "host_deg_max": max_deg,
                    "rho·d": round(rho * d, 1),
                    "multilevel_deg": multi_max,
                    "2dρlogρ": round(bound71, 1),
                }
            )
        checks["§7(1): guests/server ≤ ρ+1 (all families)"] = all_props
        checks["real-time emulation: host rounds ≡ direct rounds"] = rt_ok
        checks["Thm 7.1: unknown-n degree ≤ 2dρ log ρ"] = multi_ok
        return ExperimentResult(
            experiment="E15",
            title="General graph emulation (§7, Thm 7.1)",
            paper_claim="≤ρ+1 guests, ≤ρ² edges/host-edge, degree ≤ρd (2dρlogρ unknown n)",
            rows=rows,
            checks=checks,
            notes=f"n = {n} servers, ρ = {rho:.2f}",
        )

    return timed(body)
