"""Experiment runner: imports all experiment modules and executes them."""

from __future__ import annotations

import pathlib
import zlib
from typing import List, Optional

# importing the modules populates the registry
from . import (  # noqa: F401
    ablations,
    balance,
    balance_churn,
    caching_multi,
    caching_single,
    churn_soak,
    congestion,
    cost_routing,
    emulation_exp,
    expander_exp,
    extensions,
    faults_exp,
    figures,
    pathlen,
    permutation,
    soak,
    structure,
    table1,
    throughput,
    tradeoff,
)
from .common import ExperimentResult, all_experiments, get_experiment

__all__ = ["run_experiments", "EXPERIMENT_IDS"]

EXPERIMENT_IDS = list(all_experiments().keys())


def run_experiments(
    names: Optional[List[str]] = None,
    seed: int = 0,
    quick: bool = False,
    out_dir: Optional[str] = None,
    echo: bool = True,
) -> List[ExperimentResult]:
    """Run selected experiments (all when ``names`` is None/['all'])."""
    if not names or [n.lower() for n in names] == ["all"]:
        names = EXPERIMENT_IDS
    results: List[ExperimentResult] = []
    for name in names:
        fn = get_experiment(name)
        kwargs = {"quick": quick}
        if seed:
            # stable digest: builtin hash() is randomized per process,
            # which would break --seed reproducibility across runs
            kwargs["seed"] = seed + zlib.crc32(name.encode()) % 1000
        res = fn(**kwargs)
        results.append(res)
        if echo:
            print(res.render())
            print()
        if out_dir:
            out = pathlib.Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{res.experiment}.json").write_text(res.to_json())
    if echo:
        passed = sum(r.passed for r in results)
        print(f"=== {passed}/{len(results)} experiments passed all checks ===")
    return results
