"""E1 — empirical regeneration of the paper's Table 1, at scale.

For every lookup scheme in the table we measure, at several network
sizes, the three columns the paper compares: expected path length,
(max) congestion, and linkage.  All schemes route through their
compiled :class:`~repro.baselines.base.BaselineBatchRouter` (the same
vectorized spine the DH engine uses), which is what lets the full run
execute 10^5-lookup cells at n = 2^16 — the scalar per-hop drivers
previously capped the shoot-out at toy sizes.

Because the paper reports *asymptotic classes*, we additionally fit
growth exponents across sizes:

* logarithmic schemes (Chord, Tapestry, Viceroy, Koorde, DH) must show
  mean path growing like ``c·log₂ n`` (bounded c, near-zero power-law
  exponent);
* CAN with d = 2 must show a power-law exponent ≈ 1/2, and at n = 2^16
  its absolute path length must dominate every log-scheme — the
  qualitative Table 1 ordering;
* small worlds must be super-logarithmic but ≪ any polynomial
  (``log² n``: the log-slope itself grows);
* congestion·n/log n must stay bounded for the log-schemes;
* linkage: constant for small-world/Viceroy/Koorde/DH(Δ=2), log n for
  Chord/Tapestry — so DH(Δ=2) must undercut Chord's degree.

A scalar replay at the smallest size cross-checks that the batch spine
reproduces per-hop routing bit-for-bit before any large cell is trusted.
"""

from __future__ import annotations

import math
from typing import Dict, List


from ..baselines import (
    CanNetwork,
    ChordNetwork,
    DistanceHalvingAdapter,
    KleinbergRing,
    KoordeNetwork,
    TapestryNetwork,
    ViceroyNetwork,
    measure_scheme_batch,
)
from ..sim.metrics import loglog_slope
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed

PAPER_TABLE1 = {
    "chord": ("log n", "(log n)/n", "log n"),
    "tapestry": ("log n", "(log n)/n", "log n"),
    "can(d=2)": ("d n^{1/d}", "d n^{1/d-1}", "d"),
    "small-world": ("log² n", "(log² n)/n", "O(1)"),
    "viceroy": ("log n", "(log n)/n", "O(1)"),
    "koorde": ("log n", "(log n)/n", "O(1)"),
    "distance-halving(d=2,dh)": ("log_d n", "(log_d n)/n", "O(d)"),
    "distance-halving(d=8,dh)": ("log_d n", "(log_d n)/n", "O(d)"),
}

#: Schemes whose ``lookup_path`` is deterministic, so the batch spine can
#: be replayed against it hop-for-hop (the DH rows route with the
#: randomized §2.2.2 algorithm and are parity-tested elsewhere via tau).
_PARITY_SCHEMES = ("chord", "tapestry", "can", "small-world", "viceroy", "koorde")

#: Log-path schemes for the absolute ordering checks.  Koorde is in the
#: same asymptotic class (its exponent check covers it) but pays ≈ 2
#: hops per target bit, so its *constant* rivals CAN's n^{1/2} until far
#: beyond 2^16 — the class fit, not the absolute ordering, is its check.
ORDER_LOG_SCHEMES = ("chord", "tapestry", "viceroy",
                     "distance-halving(d=2,dh)", "distance-halving(d=8,dh)")


def _schemes(n: int, rng_list) -> List:
    return [
        ChordNetwork(n, rng_list[0]),
        TapestryNetwork(n, rng_list[1], base=2),
        CanNetwork(n, rng_list[2], d=2),
        KleinbergRing(n, rng_list[3]),
        ViceroyNetwork(n, rng_list[4]),
        KoordeNetwork(n, rng_list[5]),
        DistanceHalvingAdapter(n, rng_list[6], delta=2, mode="dh"),
        DistanceHalvingAdapter(n, rng_list[7], delta=8, mode="dh"),
    ]


def _parity_replay(n: int, seed: int, lookups: int = 120) -> bool:
    """Batch paths == scalar paths for every deterministic scheme."""
    rngs = spawn_many(seed * 31 + n, 10)
    nets = [
        ChordNetwork(n, rngs[0]),
        TapestryNetwork(n, rngs[1], base=2),
        CanNetwork(n, rngs[2], d=2),
        KleinbergRing(n, rngs[3]),
        ViceroyNetwork(n, rngs[4]),
        KoordeNetwork(n, rngs[5]),
    ]
    probe = spawn_many(seed * 13 + n, 1)[0]
    src = probe.integers(0, n, size=lookups)
    tgt = probe.random(lookups)
    for net in nets:
        router = net.batch_router()
        res = router.route_batch(src, tgt)
        ids = list(net.node_ids())
        for i in range(lookups):
            scalar = [
                float(x)
                for x in net.lookup_path(ids[int(src[i])], float(tgt[i]), probe)
            ]
            if scalar != res.server_path(i):
                return False
    return True


@register("E1")
def run(seed: int = 1, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [128, 256, 512] if quick else [4096, 16384, 65536]
        lookups = 400 if quick else 100_000
        rows: List[Dict] = []
        by_scheme: Dict[str, Dict[int, Dict]] = {}
        for n in sizes:
            rngs = spawn_many(seed * 1000 + n, 10)
            for i, dht in enumerate(_schemes(n, rngs)):
                m = measure_scheme_batch(
                    dht, spawn_many(seed * 77 + n + i, 1)[0], lookups=lookups
                )
                by_scheme.setdefault(m.scheme, {})[n] = m.as_dict()
        checks: Dict[str, bool] = {}
        for scheme, per_n in by_scheme.items():
            ns = sorted(per_n)
            paths = [per_n[n]["mean_path"] for n in ns]
            congs = [per_n[n]["max_congestion"] for n in ns]
            degs = [per_n[n]["mean_degree"] for n in ns]
            exp_fit = loglog_slope(ns, paths)
            log_coef = paths[-1] / math.log2(ns[-1])
            cong_norm = congs[-1] * ns[-1] / math.log2(ns[-1])
            rows.append(
                {
                    "scheme": scheme,
                    "paper(path,cong,link)": "/".join(
                        PAPER_TABLE1.get(scheme, ("?", "?", "?"))
                    ),
                    "path@maxn": paths[-1],
                    "path_exponent": round(exp_fit, 3),
                    "path/log2n": round(log_coef, 2),
                    "cong*n/logn": round(cong_norm, 2),
                    "deg@maxn": degs[-1],
                }
            )
        # class checks -------------------------------------------------
        def fit(scheme):
            ns = sorted(by_scheme[scheme])
            return loglog_slope(ns, [by_scheme[scheme][n]["mean_path"] for n in ns])

        big = max(by_scheme["chord"])

        def path(scheme, n=None):
            return by_scheme[scheme][big if n is None else n]["mean_path"]

        checks["log-schemes have near-zero path exponent"] = all(
            fit(s) < 0.35
            for s in by_scheme
            if s not in ("can(d=2)", "small-world")
        )
        checks["CAN(d=2) path exponent ≈ 1/2"] = 0.3 <= fit("can(d=2)") <= 0.7
        checks["small-world between log and poly"] = (
            fit("small-world") < 0.45 and path("small-world") > path("chord")
        )
        checks["constant linkage: viceroy/koorde/small-world"] = all(
            by_scheme[s][big]["mean_degree"] <= 9
            for s in ("viceroy", "koorde", "small-world")
        )
        checks["log linkage: chord/tapestry"] = all(
            by_scheme[s][big]["mean_degree"] >= math.log2(big) / 2
            for s in ("chord", "tapestry")
        )
        checks["DH(Δ=8) beats DH(Δ=2) on path, pays degree"] = (
            path("distance-halving(d=8,dh)") < path("distance-halving(d=2,dh)")
            and by_scheme["distance-halving(d=8,dh)"][big]["mean_degree"]
            > by_scheme["distance-halving(d=2,dh)"][big]["mean_degree"]
        )
        checks["congestion·n/log n bounded for log-schemes"] = all(
            by_scheme[s][big]["max_congestion"] * big / math.log2(big) <= 30
            for s in ("chord", "tapestry", "koorde",
                      "distance-halving(d=2,dh)", "viceroy")
        )
        # Table 1 ordering at the largest size: CAN's polynomial path
        # dominates every logarithmic scheme, and constant-linkage DH
        # undercuts Chord's log-linkage.  Absolute orderings only
        # separate once n is large, so they gate the full run (n = 2^16);
        # the quick run keeps the class fits and the parity replay.
        if not quick:
            checks["ordering: CAN path dominates log-schemes at max n"] = all(
                path("can(d=2)") > 2 * path(s) for s in ORDER_LOG_SCHEMES
            )
            checks["ordering: small-world path above every log-scheme"] = all(
                path("small-world") > path(s) for s in ORDER_LOG_SCHEMES
            )
        checks["ordering: DH(Δ=2) linkage below Chord's"] = (
            by_scheme["distance-halving(d=2,dh)"][big]["mean_degree"]
            < by_scheme["chord"][big]["mean_degree"]
        )
        checks["batch spine replays scalar paths"] = _parity_replay(
            sizes[0] if quick else 128, seed
        )
        return ExperimentResult(
            experiment="E1",
            title="Table 1 — comparison of lookup schemes",
            paper_claim="path/congestion/linkage classes per scheme (Table 1)",
            rows=rows,
            checks=checks,
            notes=(
                f"sizes {sizes}, {lookups} batch lookups per cell; "
                "exponents fitted log-log; scalar parity replayed at the "
                "smallest size"
            ),
        )

    return timed(body)
