"""E1 — empirical regeneration of the paper's Table 1.

For every lookup scheme in the table we measure, at several network
sizes, the three columns the paper compares: expected path length,
(max) congestion, and linkage.  Because the paper reports *asymptotic
classes*, we additionally fit growth exponents across sizes:

* logarithmic schemes (Chord, Tapestry, Viceroy, Koorde, DH) must show
  mean path growing like ``c·log₂ n`` (bounded c, near-zero power-law
  exponent);
* CAN with d = 2 must show a power-law exponent ≈ 1/2;
* small worlds must be super-logarithmic but ≪ any polynomial
  (``log² n``: the log-slope itself grows);
* congestion·n/log n must stay bounded for the log-schemes;
* linkage: constant for small-world/Viceroy/Koorde/DH(Δ=2), log n for
  Chord/Tapestry.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..baselines import (
    CanNetwork,
    ChordNetwork,
    DistanceHalvingAdapter,
    KleinbergRing,
    KoordeNetwork,
    TapestryNetwork,
    ViceroyNetwork,
    measure_scheme,
)
from ..sim.metrics import loglog_slope
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed

PAPER_TABLE1 = {
    "chord": ("log n", "(log n)/n", "log n"),
    "tapestry": ("log n", "(log n)/n", "log n"),
    "can(d=2)": ("d n^{1/d}", "d n^{1/d-1}", "d"),
    "small-world": ("log² n", "(log² n)/n", "O(1)"),
    "viceroy": ("log n", "(log n)/n", "O(1)"),
    "koorde": ("log n", "(log n)/n", "O(1)"),
    "distance-halving(d=2,dh)": ("log_d n", "(log_d n)/n", "O(d)"),
    "distance-halving(d=8,dh)": ("log_d n", "(log_d n)/n", "O(d)"),
}


def _schemes(n: int, rng_list) -> List:
    return [
        ChordNetwork(n, rng_list[0]),
        TapestryNetwork(n, rng_list[1], base=2),
        CanNetwork(n, rng_list[2], d=2),
        KleinbergRing(n, rng_list[3]),
        ViceroyNetwork(n, rng_list[4]),
        KoordeNetwork(n, rng_list[5]),
        DistanceHalvingAdapter(n, rng_list[6], delta=2, mode="dh"),
        DistanceHalvingAdapter(n, rng_list[7], delta=8, mode="dh"),
    ]


@register("E1")
def run(seed: int = 1, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [128, 256, 512] if quick else [128, 256, 512, 1024]
        lookups = 400 if quick else 1500
        rows: List[Dict] = []
        by_scheme: Dict[str, Dict[int, Dict]] = {}
        for n in sizes:
            rngs = spawn_many(seed * 1000 + n, 10)
            for i, dht in enumerate(_schemes(n, rngs)):
                m = measure_scheme(dht, spawn_many(seed * 77 + n + i, 1)[0],
                                   lookups=lookups)
                by_scheme.setdefault(m.scheme, {})[n] = m.as_dict()
        checks: Dict[str, bool] = {}
        for scheme, per_n in by_scheme.items():
            ns = sorted(per_n)
            paths = [per_n[n]["mean_path"] for n in ns]
            congs = [per_n[n]["max_congestion"] for n in ns]
            degs = [per_n[n]["mean_degree"] for n in ns]
            exp_fit = loglog_slope(ns, paths)
            log_coef = paths[-1] / math.log2(ns[-1])
            cong_norm = congs[-1] * ns[-1] / math.log2(ns[-1])
            rows.append(
                {
                    "scheme": scheme,
                    "paper(path,cong,link)": "/".join(
                        PAPER_TABLE1.get(scheme, ("?", "?", "?"))
                    ),
                    "path@maxn": paths[-1],
                    "path_exponent": round(exp_fit, 3),
                    "path/log2n": round(log_coef, 2),
                    "cong*n/logn": round(cong_norm, 2),
                    "deg@maxn": degs[-1],
                }
            )
        # class checks -------------------------------------------------
        def fit(scheme):
            ns = sorted(by_scheme[scheme])
            return loglog_slope(ns, [by_scheme[scheme][n]["mean_path"] for n in ns])

        checks["log-schemes have near-zero path exponent"] = all(
            fit(s) < 0.35
            for s in by_scheme
            if s not in ("can(d=2)", "small-world")
        )
        checks["CAN(d=2) path exponent ≈ 1/2"] = 0.3 <= fit("can(d=2)") <= 0.7
        checks["small-world between log and poly"] = (
            fit("small-world") < 0.45
            and by_scheme["small-world"][max(by_scheme["small-world"])]["mean_path"]
            > by_scheme["chord"][max(by_scheme["chord"])]["mean_path"]
        )
        big = max(by_scheme["chord"])
        checks["constant linkage: viceroy/koorde/small-world"] = all(
            by_scheme[s][big]["mean_degree"] <= 9 for s in ("viceroy", "koorde", "small-world")
        )
        checks["log linkage: chord/tapestry"] = all(
            by_scheme[s][big]["mean_degree"] >= math.log2(big) / 2
            for s in ("chord", "tapestry")
        )
        checks["DH(Δ=8) beats DH(Δ=2) on path, pays degree"] = (
            by_scheme["distance-halving(d=8,dh)"][big]["mean_path"]
            < by_scheme["distance-halving(d=2,dh)"][big]["mean_path"]
            and by_scheme["distance-halving(d=8,dh)"][big]["mean_degree"]
            > by_scheme["distance-halving(d=2,dh)"][big]["mean_degree"]
        )
        checks["congestion·n/log n bounded for log-schemes"] = all(
            by_scheme[s][big]["max_congestion"] * big / math.log2(big) <= 30
            for s in ("chord", "tapestry", "koorde",
                      "distance-halving(d=2,dh)", "viceroy")
        )
        return ExperimentResult(
            experiment="E1",
            title="Table 1 — comparison of lookup schemes",
            paper_claim="path/congestion/linkage classes per scheme (Table 1)",
            rows=rows,
            checks=checks,
            notes=f"sizes {sizes}, {lookups} lookups each; exponents fitted log-log",
        )

    return timed(body)
