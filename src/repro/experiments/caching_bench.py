"""Batch-vs-scalar caching measurement (§3 protocol at throughput scale).

The measurement helper :func:`measure_caching` drives a Zipf hot-key
request stream through the vectorized
:class:`~repro.core.batch_cache.BatchCacheEngine` and times it against
the scalar :class:`~repro.core.caching.CacheSystem.request` loop on the
same stream, with three verdicts attached:

* ``speedup`` — cache-served requests/sec, batch over scalar;
* ``parity_ok`` — on a small side network the two engines replay an
  identical tau-pinned trace and must agree bit-for-bit (served nodes,
  replication counts, active sets, ``summary()``);
* ``salted_ok`` — on a single-hotspot stream at the headline size, the
  salted mitigation mode must cut the hottest server's cache-hit load
  below the unsalted path-caching protocol's.

Shared by ``benchmarks/bench_caching.py``, the ``bench-caching`` CLI
subcommand, and the CI bench-artifact smoke step.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional

import numpy as np

from ..balance import MultipleChoice
from ..core import BatchCacheEngine, CacheSystem, DistanceHalvingNetwork
from ..sim.rng import spawn_many
from ..sim.workload import demand_stream, single_hotspot_demands, zipf_demands

__all__ = ["measure_caching", "format_caching_report", "drive_chunked",
           "trace_parity"]

#: Requests per serve_batch call: big enough to amortise the fixpoint,
#: small enough to keep the per-chunk working set in cache-friendly range.
DEFAULT_CHUNK = 1 << 17


def drive_chunked(engine, item_idx, sources, rng=None, tau=None,
                  chunk: int = DEFAULT_CHUNK):
    """Serve a long stream through ``engine`` in sequential chunks.

    Chunk boundaries are semantically invisible (`serve_batch` preserves
    arrival order inside and between calls); this just bounds memory.
    """
    total = len(item_idx)
    for lo in range(0, total, chunk):
        hi = min(total, lo + chunk)
        engine.serve_batch(item_idx[lo:hi], sources[lo:hi], rng=rng,
                           tau=tau[lo:hi] if tau is not None else None)


def trace_parity(net, items, item_idx, sources, tau, threshold, salts=1,
                 epochs=None) -> bool:
    """Replay one tau-pinned trace on both engines; True iff bit-identical.

    Splits the trace into ``epochs`` segments (default 1) with an
    ``advance_epoch`` at each boundary, checking served nodes and hop
    counts per request, then per-tree active sets / counters /
    replication totals and the ``summary()`` digest after every epoch.
    """
    eng = BatchCacheEngine(net, items, threshold=threshold, salts=salts)
    scal = CacheSystem(net, threshold=threshold, salts=salts)
    dummy = np.random.default_rng(0)
    bounds = np.array_split(np.arange(len(item_idx)), epochs or 1)
    for segment in bounds:
        if segment.size == 0:
            continue
        lo, hi = int(segment[0]), int(segment[-1]) + 1
        res = eng.serve_batch(item_idx[lo:hi], sources[lo:hi], tau=tau[lo:hi])
        for k, i in enumerate(range(lo, hi)):
            r = scal.request(items[int(item_idx[i])], float(sources[i]),
                             dummy, tau=tuple(int(d) for d in tau[i]))
            if res.serving_node(k) != r.serving_node:
                return False
            if int(res.hops[k]) != r.hops:
                return False
        if eng.advance_epoch() != scal.advance_epoch():
            return False
        if eng.summary() != scal.summary():
            return False
    # active-set / replication parity over every materialised tree
    from ..core.caching import salted_key
    for k, item in enumerate(items):
        for j in range(salts):
            tree = eng.tree_index(k, j)
            key = item if salts == 1 else salted_key(item, j)
            st = scal.trees.get(key)
            active = set(st.active) if st is not None else {()}
            reps = st.replications if st is not None else 0
            if eng.active_set(tree) != active:
                return False
            if eng.tree_replications(tree) != reps:
                return False
    return True


def measure_caching(
    n: int = 16384,
    requests: int = 1_000_000,
    seed: int = 0,
    scalar_sample: int = 1500,
    n_items: int = 64,
    salts: int = 4,
    exponent: float = 1.2,
    threshold: Optional[int] = None,
    parity_n: int = 512,
    parity_requests: int = 1200,
    hotspot_requests: Optional[int] = None,
    chunk: int = DEFAULT_CHUNK,
    net: Optional[DistanceHalvingNetwork] = None,
) -> Dict:
    """Serve ``requests`` Zipf(``exponent``) cache requests, batch vs scalar.

    Builds (or reuses) an ``n``-server Multiple-Choice-balanced network,
    expands a Zipf demand over ``n_items`` items into a shuffled arrival
    stream, and times the chunked batch drive (including the end-of-epoch
    collapse) against the scalar per-request loop on the stream's head.
    Adds the tau-pinned parity replay on a ``parity_n``-server network
    and the salted-vs-unsalted hotspot comparison at the headline size.
    Returns rates, the speedup, cache statistics, and all three verdicts.
    """
    if requests < 1:
        raise ValueError("measure_caching needs at least one request")
    if parity_n > 1024:
        raise ValueError("the parity replay is scalar-bound; keep parity_n <= 1024")
    if net is not None:
        n = net.n
    build_rng, route = spawn_many(seed * 29 + n, 2)
    if net is None:
        net = DistanceHalvingNetwork(rng=build_rng)
        net.populate(n, selector=MultipleChoice(t=4))

    items = [f"item{i}" for i in range(n_items)]
    demands = zipf_demands(n_items, requests, route, exponent=exponent)
    stream = demand_stream(demands, route)
    pts = net.segments.as_array()
    sources = pts[route.integers(0, n, size=requests)]

    t0 = time.perf_counter()
    engine = BatchCacheEngine(net, items, threshold=threshold)
    compile_secs = time.perf_counter() - t0

    t0 = time.perf_counter()
    drive_chunked(engine, stream, sources, rng=route, chunk=chunk)
    engine.advance_epoch()
    batch_secs = time.perf_counter() - t0

    m = min(scalar_sample, requests)
    scal = CacheSystem(net, threshold=threshold)
    t0 = time.perf_counter()
    for i in range(m):
        scal.request(items[int(stream[i])], float(sources[i]), route)
    scalar_secs = time.perf_counter() - t0

    # bit-parity replay: full trace on a scalar-affordable side network
    prng, proute = spawn_many(seed * 31 + parity_n, 2)
    pnet = DistanceHalvingNetwork(rng=prng)
    pnet.populate(parity_n, selector=MultipleChoice(t=4))
    pq = min(parity_requests, requests)
    p_items = items[: min(n_items, 16)]
    p_idx = proute.integers(0, len(p_items), size=pq)
    p_src = pnet.segments.as_array()[proute.integers(0, parity_n, size=pq)]
    p_tau = proute.integers(0, 2, size=(pq, 64))
    parity_ok = trace_parity(pnet, p_items, p_idx, p_src, p_tau,
                             threshold=threshold, epochs=2)
    parity_ok &= trace_parity(pnet, p_items, p_idx, p_src, p_tau,
                              threshold=threshold, salts=max(2, salts // 2),
                              epochs=2)

    # hotspot mitigation: same stream, same digits, salted vs unsalted.
    # The crowd must be concentrated (q/n well above 1) for the s-way
    # split to dominate root-placement luck, so default to the full
    # request scale rather than a small sample.
    hq = hotspot_requests if hotspot_requests is not None else min(
        requests, 1_000_000)
    hot_stream = demand_stream(single_hotspot_demands(1, hq), route)
    hot_src = pts[route.integers(0, n, size=hq)]
    hot_tau = route.integers(0, net.delta, size=(hq, 64))
    plain = BatchCacheEngine(net, ["hot"], threshold=threshold)
    drive_chunked(plain, hot_stream, hot_src, tau=hot_tau, chunk=chunk)
    salted = BatchCacheEngine(net, ["hot"], threshold=threshold, salts=salts)
    drive_chunked(salted, hot_stream, hot_src, tau=hot_tau, chunk=chunk)
    plain_max = int(plain.server_cache_hits().max())
    salted_max = int(salted.server_cache_hits().max())
    salted_ok = salted_max < plain_max

    batch_rate = requests / batch_secs if batch_secs > 0 else math.inf
    scalar_rate = m / scalar_secs if scalar_secs > 0 else math.inf
    summary = engine.summary()
    return {
        "n": net.n,
        "rho": float(net.smoothness()),
        "requests": requests,
        "n_items": n_items,
        "threshold_c": int(engine.c),
        "zipf_exponent": exponent,
        "scalar_sample": m,
        "compile_secs": compile_secs,
        "batch_secs": batch_secs,
        "scalar_secs": scalar_secs,
        "batch_rate": batch_rate,
        "scalar_rate": scalar_rate,
        "speedup": batch_rate / scalar_rate if scalar_rate > 0 else math.inf,
        "parity_n": parity_n,
        "parity_ok": bool(parity_ok),
        "salts": salts,
        "hotspot_requests": hq,
        "unsalted_max_hits": plain_max,
        "salted_max_hits": salted_max,
        "salted_reduction": plain_max / salted_max if salted_max else math.inf,
        "salted_ok": bool(salted_ok),
        "max_cache_hits": summary["max_cache_hits"],
        "max_messages": summary["max_messages"],
        "max_items_cached": summary["max_items_cached"],
        "total_copies": summary["total_copies"],
    }


def format_caching_report(result: Dict) -> str:
    """Human-readable multi-line summary of one measurement dict."""
    lines = [
        f"network: n={result['n']}  rho={result['rho']:.2f}  "
        f"c={result['threshold_c']}  items={result['n_items']}  "
        f"Zipf({result['zipf_exponent']})  "
        f"(engine compiled in {result['compile_secs']:.3f}s)",
        f"batch : {result['requests']:>8} requests cache-served in "
        f"{result['batch_secs']:.3f}s  = {result['batch_rate']:>12,.0f} "
        f"requests/sec",
        f"scalar: {result['scalar_sample']:>8} requests cache-served in "
        f"{result['scalar_secs']:.3f}s  = {result['scalar_rate']:>12,.0f} "
        f"requests/sec",
        f"speedup: {result['speedup']:.1f}x   max_hits: "
        f"{result['max_cache_hits']:.0f}   copies: "
        f"{result['total_copies']:.0f}   items/server ≤ "
        f"{result['max_items_cached']:.0f}",
        f"salting: hotspot max hits {result['unsalted_max_hits']} -> "
        f"{result['salted_max_hits']} with s={result['salts']} "
        f"({result['salted_reduction']:.1f}x relief)  "
        f"{'PASS' if result['salted_ok'] else 'FAIL'}",
        f"trace parity (served nodes/replications/summary, "
        f"n={result['parity_n']}): "
        f"{'PASS' if result['parity_ok'] else 'FAIL'}",
    ]
    return "\n".join(lines)
