"""E7 + E9 — single-hotspot flash crowd (Obs 3.1, Lem 3.3, Thm 3.6; update).

One item absorbs a flash crowd of ``q`` requests from uniformly random
servers — ``q = 10⁶`` per cell at the full sizes (n up to 16384), far
beyond what the scalar per-request loop could drive.  The stream runs
through the vectorized :class:`~repro.core.batch_cache.BatchCacheEngine`
in arrival-ordered chunks, and in parallel through a **salted** engine
(the same hot key spread over ``s = 4`` deterministic salt points) on
the identical sources and digit strings.  Measured against the paper,
with the load bounds scaled by ``q/n`` (the paper states them for the
one-request-per-server epoch ``q = n``):

* active tree ≤ ``4q/c`` nodes at epoch end (Observation 3.1);
* active depth ≤ ``log₂(q/c) + O(1)`` at the crowd's peak (Lemma 3.3);
* per-server cache hits and messages ``O((q/n)·log² n)`` (Theorem 3.6
  with c = Θ(log n));
* salting strictly lowers the hottest server's hit load on the same
  stream — the §3.4-style mitigation head-to-head;
* E9: a content update reaches every active copy in ≤ depth time and
  ≤ tree-size messages (both O(log n));
* a scalar bit-parity cell at n = 128: the engine's served nodes,
  replication counts and ``summary()`` must replay exactly on the
  scalar :class:`~repro.core.caching.CacheSystem` (PR 4/5 recipe).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..balance import MultipleChoice
from ..core import BatchCacheEngine, DistanceHalvingNetwork
from ..sim.rng import spawn_many
from ..sim.workload import DH_TAU_DIGITS
from .caching_bench import DEFAULT_CHUNK, trace_parity
from .common import ExperimentResult, register, timed

#: Salt points for the mitigation column (spread factor s).
SALTS = 4


@register("E7")
def run(seed: int = 7, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [128, 512] if quick else [1024, 4096, 16384]
        rows: List[Dict] = []
        checks: Dict[str, bool] = {}
        size_ok = depth_ok = hits_ok = msgs_ok = update_ok = True
        salted_ok = beats_ok = True
        for n in sizes:
            rng, route = spawn_many(seed * 29 + n, 2)
            net = DistanceHalvingNetwork(rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            c = max(2, int(math.ceil(math.log2(n))))
            q = 4 * n if quick else 1_000_000
            engine = BatchCacheEngine(net, ["hot"], threshold=c)
            salted = BatchCacheEngine(net, ["hot"], threshold=c, salts=SALTS)
            pts = net.segments.as_array()
            # identical sources AND digit strings for both engines: the
            # salted column is a pure protocol comparison, not rng drift
            for lo in range(0, q, DEFAULT_CHUNK):
                size = min(q, lo + DEFAULT_CHUNK) - lo
                idx = np.zeros(size, dtype=np.int64)
                src = pts[route.integers(0, n, size=size)]
                tau = route.integers(0, net.delta, size=(size, DH_TAU_DIGITS))
                engine.serve_batch(idx, src, tau=tau)
                salted.serve_batch(idx, src, tau=tau)
            depth = engine.tree_depth(0)  # at the crowd's peak
            engine.advance_epoch()
            salted.advance_epoch()
            tree_size = engine.tree_size(0)
            max_hits = int(engine.server_cache_hits().max())
            max_msgs = int(engine.server_messages().max())
            salted_hits = int(salted.server_cache_hits().max())
            upd_msgs, upd_time = engine.content_update(0)
            logn = math.log2(n)
            scale = max(1.0, q / n)
            size_ok &= tree_size <= max(1, 4 * q / c) + 1
            depth_ok &= depth <= math.log2(q / c) + 3
            hits_ok &= max_hits <= 6 * scale * logn**2
            msgs_ok &= max_msgs <= 10 * scale * logn**2
            update_ok &= upd_time <= 2 * logn and upd_msgs <= 4 * q / c
            # Salting spreads one hot structure over s root positions:
            # strict relief is demanded at the headline cell, where the
            # crowd is concentrated enough (q/n ≈ 60) for the split to
            # dominate root-placement luck; the light cells only get a
            # no-blowup bound (at q = Θ(n) the unsalted tree already
            # equalises, so s fresh shallower trees can tie or lose a
            # little to extreme-value effects across their roots).
            salted_ok &= salted_hits <= 1.5 * max_hits
            if not quick and n == sizes[-1]:
                salted_ok &= salted_hits < max_hits
            # caching beats no-caching: the owner alone would take all q
            beats_ok &= q / max(1, max_hits) >= n / (6 * logn**2)
            rows.append(
                {
                    "n": n,
                    "q": q,
                    "c": c,
                    "tree_size": tree_size,
                    "4q/c": round(4 * q / c, 0),
                    "depth": depth,
                    "log(q/c)": round(math.log2(q / c), 1),
                    "max_hits": max_hits,
                    "(q/n)log²n": round(scale * logn**2, 0),
                    "max_msgs": max_msgs,
                    "salted_hits": salted_hits,
                    "upd_msgs": upd_msgs,
                    "upd_time": upd_time,
                }
            )
        # scalar bit-parity cell (always run; scalar-affordable size)
        pn, pq = 128, 400
        prng, proute = spawn_many(seed * 29 + pn + 1, 2)
        pnet = DistanceHalvingNetwork(rng=prng)
        pnet.populate(pn, selector=MultipleChoice(t=4))
        p_pts = pnet.segments.as_array()
        p_idx = np.zeros(pq, dtype=np.int64)
        p_src = p_pts[proute.integers(0, pn, size=pq)]
        p_tau = proute.integers(0, 2, size=(pq, DH_TAU_DIGITS))
        parity_ok = trace_parity(pnet, ["hot"], p_idx, p_src, p_tau,
                                 threshold=5, epochs=2)
        parity_ok &= trace_parity(pnet, ["hot"], p_idx, p_src, p_tau,
                                  threshold=5, salts=SALTS, epochs=2)

        checks["Obs 3.1: tree ≤ 4q/c after epoch"] = size_ok
        checks["Lem 3.3: depth ≤ log(q/c)+O(1)"] = depth_ok
        checks["Thm 3.6: max cache hits O((q/n)·log² n)"] = hits_ok
        checks["Thm 3.6: max messages O((q/n)·log² n)"] = msgs_ok
        checks[f"salting (s={SALTS}) relieves the hottest server"] = salted_ok
        checks["E9: content update ≤ O(log n) time, ≤ 4q/c messages"] = update_ok
        checks["caching beats no-caching by ≥ n/log² n"] = beats_ok
        checks["batch/scalar bit parity at n=128 (plain + salted)"] = bool(parity_ok)
        return ExperimentResult(
            experiment="E7",
            title="Flash-crowd relief at scale (Obs 3.1, Lem 3.3, Thm 3.6) + E9 update",
            paper_claim="tree ≤ 4q/c, depth ≤ log(q/c)+O(1), hits/messages O(log² n)",
            rows=rows,
            checks=checks,
        )

    return timed(body)
