"""E7 + E9 — single hotspot caching (Obs 3.1, Lem 3.3, Thm 3.6; update).

One item receives ``q = n`` simultaneous requests (each server issues
one — the §3 batch model).  Measured against the paper:

* active tree ≤ ``4q/c`` nodes at epoch end (Observation 3.1);
* active depth ≤ ``log₂(q/c) + O(1)`` (Lemma 3.3);
* per-server cache hits ``O(log² n)`` and messages ``O(log² n)``
  (Theorem 3.6 with c = Θ(log n));
* without caching, the owner takes all ``q`` hits — the baseline column;
* E9: a content update reaches every active copy in ≤ depth time and
  ≤ tree-size messages (both O(log n)).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..core import CacheSystem, DistanceHalvingNetwork
from ..balance import MultipleChoice
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("E7")
def run(seed: int = 7, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [128, 512] if quick else [128, 256, 512, 1024]
        rows: List[Dict] = []
        checks: Dict[str, bool] = {}
        size_ok = depth_ok = hits_ok = msgs_ok = update_ok = True
        for n in sizes:
            rng, route = spawn_many(seed * 29 + n, 2)
            net = DistanceHalvingNetwork(rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            c = max(2, int(math.ceil(math.log2(n))))
            cache = CacheSystem(net, threshold=c)
            pts = list(net.points())
            q = n
            for i in range(q):
                cache.request("hot", pts[i % n], route)
            tree = cache.tree_for("hot")
            cache.advance_epoch()
            tree_size = tree.size()
            depth = tree.depth()
            max_hits = max(cache.cache_hits.values(), default=0)
            max_msgs = max(cache.messages.values(), default=0)
            upd_msgs, upd_time = tree.update_content(net)
            logn = math.log2(n)
            size_ok &= tree_size <= max(1, 4 * q / c) + 1
            depth_ok &= depth <= math.log2(q / c) + 3
            hits_ok &= max_hits <= 6 * logn**2
            msgs_ok &= max_msgs <= 10 * logn**2
            update_ok &= upd_time <= 2 * logn and upd_msgs <= 4 * q / c
            rows.append(
                {
                    "n=q": n,
                    "c": c,
                    "tree_size": tree_size,
                    "4q/c": round(4 * q / c, 0),
                    "depth": depth,
                    "log(q/c)": round(math.log2(q / c), 1),
                    "max_hits": max_hits,
                    "log²n": round(logn**2, 0),
                    "max_msgs": max_msgs,
                    "no_cache_load": q,  # owner would take all q requests
                    "upd_msgs": upd_msgs,
                    "upd_time": upd_time,
                }
            )
        checks["Obs 3.1: tree ≤ 4q/c after epoch"] = size_ok
        checks["Lem 3.3: depth ≤ log(q/c)+O(1)"] = depth_ok
        checks["Thm 3.6: max cache hits O(log² n)"] = hits_ok
        checks["Thm 3.6: max messages O(log² n)"] = msgs_ok
        checks["E9: content update ≤ O(log n) time, ≤ 4q/c messages"] = update_ok
        checks["caching beats no-caching by ≥ n/log² n"] = all(
            r["no_cache_load"] / max(1, r["max_hits"]) >= r["n=q"] / (6 * math.log2(r["n=q"]) ** 2)
            for r in rows
        )
        return ExperimentResult(
            experiment="E7",
            title="Single hotspot relief (Obs 3.1, Lem 3.3, Thm 3.6) + E9 update",
            paper_claim="tree ≤ 4q/c, depth ≤ log(q/c)+O(1), hits/messages O(log² n)",
            rows=rows,
            checks=checks,
        )

    return timed(body)
