"""E13 + E14 — fault tolerance of the overlapping DHT (§6).

E13 (Theorems 6.3, 6.4): Simple Lookup path ≤ log n + O(1); under random
fail-stop with probability p, *every* surviving server still locates
every item (we sweep p and find the breakdown point — the paper's
"sufficiently low p" is visible as a knee).

E14 (Theorem 6.6): the false-message-resistant lookup returns the
correct item under Byzantine payload corruption, in parallel time
≈ log n with O(log³ n) messages; the cheap lookup fails under the same
adversary (the contrast column).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..faults import (
    OverlappingDHNetwork,
    random_byzantine,
    random_failstop,
    resistant_lookup,
    simple_lookup,
)
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("E13")
def run_failstop(seed: int = 13, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 256 if quick else 1024
        probes = 40 if quick else 120
        rng, lookup_rng = spawn_many(seed * 67, 2)
        net = OverlappingDHNetwork(n, rng)
        net.store_item("doc", "payload")
        rows: List[Dict] = []
        success_at: Dict[float, float] = {}
        times: List[int] = []
        for p in (0.0, 0.1, 0.2, 0.3, 0.5):
            plan = random_failstop(net.points, p, rng)
            ok = tot = 0
            for i in range(0, n, max(1, n // probes)):
                src = net.points[i]
                if not plan.is_alive(src):
                    continue
                res = simple_lookup(net, src, "doc", lookup_rng, plan)
                ok += res.success
                tot += 1
                times.append(res.parallel_time)
            rate = ok / max(1, tot)
            success_at[p] = rate
            rows.append({"p_fail": p, "survivors_tested": tot,
                         "success_rate": round(rate, 3),
                         "mean_time": round(float(np.mean(times)), 1),
                         "log2n+O(1)": round(math.log2(n) + 3, 1)})
        checks = {
            "Thm 6.3: lookup time ≤ log n + O(1)": max(times) <= math.log2(n) + 3,
            "Thm 6.4: all survivors succeed at p ≤ 0.2": min(
                success_at[p] for p in (0.0, 0.1, 0.2)
            )
            == 1.0,
            "graceful degradation only at large p": success_at[0.5] >= 0.6,
        }
        return ExperimentResult(
            experiment="E13",
            title="Random fail-stop resilience (Thm 6.3 / 6.4)",
            paper_claim="for small p, w.h.p. every surviving server finds every item",
            rows=rows,
            checks=checks,
            notes=f"n = {n}, coverage ≈ log n replicas per item",
        )

    return timed(body)


@register("E14")
def run_byzantine(seed: int = 14, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 256 if quick else 1024
        probes = 30 if quick else 80
        rng, lrng = spawn_many(seed * 71, 2)
        net = OverlappingDHNetwork(n, rng)
        net.store_item("doc", "payload")
        rows: List[Dict] = []
        logn = math.log2(n)
        msgs_all: List[int] = []
        resist_rate: Dict[float, float] = {}
        simple_rate: Dict[float, float] = {}
        for p in (0.0, 0.05, 0.1, 0.2):
            plan = random_byzantine(net.points, p, rng)
            r_ok = s_ok = tot = 0
            for i in range(0, n, max(1, n // probes)):
                src = net.points[i]
                r = resistant_lookup(net, src, "doc", plan)
                s = simple_lookup(net, src, "doc", lrng, plan)
                r_ok += r.success
                s_ok += s.success
                tot += 1
                msgs_all.append(r.messages)
            resist_rate[p] = r_ok / tot
            simple_rate[p] = s_ok / tot
            rows.append({"p_byzantine": p,
                         "resistant_success": round(r_ok / tot, 3),
                         "simple_success": round(s_ok / tot, 3),
                         "mean_msgs": round(float(np.mean(msgs_all)), 0),
                         "8log³n": round(8 * logn**3, 0)})
        checks = {
            "Thm 6.6: resistant lookup correct at p ≤ 0.1": min(
                resist_rate[p] for p in (0.0, 0.05, 0.1)
            )
            >= 0.99,
            "message complexity O(log³ n)": max(msgs_all) <= 8 * logn**3,
            "messages are Ω(log² n) on average (it actually floods)": float(
                np.mean(msgs_all)
            )
            >= logn**2 / 4,
            "simple lookup *does* fail under liars (contrast)": simple_rate[0.2]
            < resist_rate[0.2],
        }
        return ExperimentResult(
            experiment="E14",
            title="False-message-resistant lookup (Thm 6.6)",
            paper_claim="log n parallel time, O(log³ n) messages, majority survives",
            rows=rows,
            checks=checks,
        )

    return timed(body)
