"""E13 + E14 — fault tolerance of the overlapping DHT, at scale (§6).

E13 (Theorems 6.3, 6.4): a **fault sweep** over failure probability
p ∈ {0.05 … 0.5} and network size n ∈ {4096, 16384}.  Each cell draws a
fresh random fail-stop plan, samples ≥100k (surviving source, target)
pairs and routes them through the vectorized fault-tolerant batch
engine (:class:`~repro.faults.batch_ft.FTBatchEngine`): per-hop
survival is one boolean reduction per level over the array-backed cover
tables.  The Theorem 6.4 all-surviving-pairs reachability claim is
verified on the whole sample for small p, the breakdown knee is visible
at large p, and at the smallest size a sub-workload is replayed through
the scalar :func:`~repro.faults.lookup_ft.simple_lookup` with shared
choice uniforms — success flags, hop/message counts, traversed levels
and server walks must be **bit-identical**.

E14 (Theorem 6.6): the false-message-resistant lookup under Byzantine
payload corruption, batched: majority votes become counts over cover
sets (see :meth:`~repro.faults.batch_ft.FTBatchEngine
.batch_resistant_lookup`), with the cheap Simple Lookup as the contrast
column and the same scalar bit-parity cross-check at the smallest size.

The measurement helper :func:`measure_faults` is shared by this
experiment, ``benchmarks/bench_faults.py`` and the ``bench-faults`` CLI
subcommand.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

from ..core.lookup import compress_path
from ..faults import (
    FTBatchEngine,
    OverlappingDHNetwork,
    random_byzantine,
    random_failstop,
    resistant_lookup,
    simple_lookup,
)
from ..sim.rng import spawn_many
from ..sim.workload import survivor_pairs
from .common import ExperimentResult, register, timed

__all__ = ["measure_faults", "format_faults_report", "FT_CHOICE_DIGITS"]

#: Per-hop uniforms supplied per lookup for explicit-choice batches —
#: far beyond the Theorem 6.3 walk length (log n + O(1)) at any tested
#: size (the engine raises "choices exhausted" if a walk outruns it).
FT_CHOICE_DIGITS = 32


def _scalar_simple_replay(net, batch, sources, targets, choices, plan):
    """Replay a sub-workload through the scalar walk; True iff bit-equal."""
    for i in range(targets.size):
        res = simple_lookup(net, float(sources[i]), "probe", plan=plan,
                            target=float(targets[i]), choices=list(choices[i]))
        if not (bool(res.success) == bool(batch.success[i])
                and res.messages == int(batch.messages[i])
                and res.parallel_time == int(batch.parallel_time[i])
                and compress_path(res.servers) == batch.server_path(i)):
            return False
    return True


def measure_faults(
    n: int = 16384,
    pairs: int = 100_000,
    p_fail: float = 0.2,
    seed: int = 0,
    scalar_sample: int = 200,
    net: Optional[OverlappingDHNetwork] = None,
    engine: Optional[FTBatchEngine] = None,
) -> Dict:
    """Route one fault-sweep cell, batch vs scalar.

    Builds (or reuses) an ``n``-server overlapping network, draws a
    random fail-stop plan at probability ``p_fail``, samples ``pairs``
    (surviving source, uniform target) pairs and routes them as **one**
    batch Simple Lookup with CSR path emission.  The first
    ``scalar_sample`` pairs are replayed through the scalar per-hop walk
    driven by the same choice uniforms and must match bit-for-bit
    (success / messages / traversed levels / server walks); pass
    ``scalar_sample=0`` to skip the replay (big sweep cells).  Returns
    rates, the speedup, the reachability digest and the parity verdict.
    """
    if net is None and engine is not None:
        net = engine.net  # a lone engine pins the network it snapshots
    if net is not None:
        n = net.n
    build_rng, plan_rng, route = spawn_many(seed * 41 + n, 3)
    if net is None:
        net = OverlappingDHNetwork(n, build_rng)
    if engine is None:
        engine = FTBatchEngine(net)

    plan = random_failstop(net.points, p_fail, plan_rng)
    alive = plan.alive_mask(net.points_array)
    sources, targets = survivor_pairs(net.points_array, alive, route, pairs)
    choices = route.random((pairs, FT_CHOICE_DIGITS))

    # untimed warmup: first-touch page faults say nothing about steady state
    warm = min(2000, pairs)
    engine.batch_simple_lookup(sources[:warm], targets[:warm],
                               choices=choices[:warm], plan=plan)

    t0 = time.perf_counter()
    batch = engine.batch_simple_lookup(sources, targets, choices=choices,
                                       plan=plan, keep_paths="csr")
    batch_secs = time.perf_counter() - t0

    m = min(scalar_sample, pairs)
    parity = True
    scalar_secs = 0.0
    if m:
        t0 = time.perf_counter()
        parity = _scalar_simple_replay(net, batch, sources[:m],
                                       targets[:m], choices[:m], plan)
        scalar_secs = time.perf_counter() - t0

    batch_rate = pairs / batch_secs if batch_secs > 0 else math.inf
    scalar_rate = m / scalar_secs if scalar_secs > 0 else math.inf
    return {
        "n": n,
        "p_fail": float(p_fail),
        "pairs": pairs,
        "scalar_sample": m,
        "alive_servers": int(alive.sum()),
        "batch_secs": batch_secs,
        "scalar_secs": scalar_secs,
        "batch_rate": batch_rate,
        "scalar_rate": scalar_rate,
        "speedup": batch_rate / scalar_rate if scalar_rate > 0 else math.inf,
        "parity_ok": bool(parity),
        "success_rate": batch.success_rate(),
        "failures": int(batch.size - batch.success.sum()),
        "all_reachable": bool(batch.success.all()),
        "mean_messages": float(batch.messages.mean()),
        "max_parallel_time": int(batch.parallel_time.max()),
        "logn_bound": math.log2(n) + 3,
    }


def format_faults_report(result: Dict) -> str:
    """Human-readable multi-line summary of one measurement dict."""
    lines = [
        f"network: n={result['n']}  p_fail={result['p_fail']:g}  "
        f"alive={result['alive_servers']}",
        f"batch : {result['pairs']:>8} FT lookups routed in "
        f"{result['batch_secs']:.3f}s  = {result['batch_rate']:>12,.0f} "
        f"lookups/sec",
        f"scalar: {result['scalar_sample']:>8} FT lookups replayed in "
        f"{result['scalar_secs']:.3f}s  = {result['scalar_rate']:>12,.0f} "
        f"lookups/sec",
        f"speedup: {result['speedup']:.1f}x   success: "
        f"{result['success_rate']:.5f} ({result['failures']} failures)   "
        f"max parallel time: {result['max_parallel_time']} "
        f"(≤ {result['logn_bound']:.1f})",
        f"parity (success/messages/levels/paths on scalar replay): "
        f"{'PASS' if result['parity_ok'] else 'FAIL'}",
    ]
    return "\n".join(lines)


@register("E13")
def run_failstop(seed: int = 13, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [256] if quick else [4096, 16384]
        ps = (0.05, 0.1, 0.2, 0.3, 0.5)
        pairs = 2000 if quick else 100_000
        sample = 60 if quick else 200
        rows: List[Dict] = []
        parity_ok = True
        time_ok = True
        reach_small_p: List[float] = []
        rate_at: Dict[tuple, float] = {}
        for n in sizes:
            build_rng, _ = spawn_many(seed * 67 + n, 2)
            net = OverlappingDHNetwork(n, build_rng)
            engine = FTBatchEngine(net)
            for p in ps:
                res = measure_faults(
                    n=n, pairs=pairs, p_fail=p, seed=seed,
                    scalar_sample=sample if n == sizes[0] else 0,
                    net=net, engine=engine)
                parity_ok &= res["parity_ok"]
                time_ok &= res["max_parallel_time"] <= res["logn_bound"]
                rate_at[(n, p)] = res["success_rate"]
                if p <= 0.1:
                    reach_small_p.append(res["success_rate"])
                rows.append({
                    "n": n, "p_fail": p, "pairs": pairs,
                    "alive": res["alive_servers"],
                    "success_rate": round(res["success_rate"], 5),
                    "failures": res["failures"],
                    "max_time": res["max_parallel_time"],
                    "log2n+O(1)": round(res["logn_bound"], 1),
                })
        checks = {
            "Thm 6.3: parallel time ≤ log n + O(1) in every cell": time_ok,
            "Thm 6.4: every sampled surviving pair reaches its item at "
            "p ≤ 0.1": min(reach_small_p) == 1.0,
            "graceful degradation: ≥ 99.9% of pairs still reach at p = 0.2":
                min(rate_at[(n, 0.2)] for n in sizes) >= 0.999,
            "degradation stays graceful even at p = 0.5 (≥ 60% reach)": min(
                rate_at[(n, 0.5)] for n in sizes) >= 0.6,
            f"batch bit-identical to scalar replay (n={sizes[0]}, all p)":
                parity_ok,
        }
        return ExperimentResult(
            experiment="E13",
            title="Random fail-stop sweep at scale (Thm 6.3 / 6.4)",
            paper_claim="for small p, w.h.p. every surviving server finds "
            "every item",
            rows=rows,
            checks=checks,
            notes=f"{pairs} sampled pairs per cell, batch-routed with CSR "
            "paths; scalar bit-parity cross-check at the smallest size",
        )

    return timed(body)


@register("E14")
def run_byzantine(seed: int = 14, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [256] if quick else [1024, 4096]
        ps = (0.0, 0.05, 0.1, 0.2)
        pairs = 400 if quick else 20_000
        sample = 40 if quick else 100
        rows: List[Dict] = []
        parity_ok = True
        msgs_ok = True
        floods = True
        resist_small_p: List[float] = []
        resist_rate: Dict[tuple, float] = {}
        simple_rate: Dict[tuple, float] = {}
        for n in sizes:
            build_rng, plan_rng, route = spawn_many(seed * 71 + n, 3)
            net = OverlappingDHNetwork(n, build_rng)
            engine = FTBatchEngine(net)
            logn = math.log2(n)
            for p in ps:
                plan = random_byzantine(net.points, p, plan_rng)
                sources = net.points_array[route.integers(0, n, size=pairs)]
                targets = route.random(pairs)
                choices = route.random((pairs, FT_CHOICE_DIGITS))
                resist = engine.batch_resistant_lookup(sources, targets,
                                                       plan=plan)
                simple = engine.batch_simple_lookup(sources, targets,
                                                    choices=choices, plan=plan,
                                                    keep_paths="csr")
                if n == sizes[0]:
                    m = min(sample, pairs)
                    parity_ok &= _scalar_simple_replay(
                        net, simple, sources[:m], targets[:m],
                        choices[:m], plan)
                    for i in range(m):
                        ref = resistant_lookup(net, float(sources[i]), "probe",
                                               plan, target=float(targets[i]))
                        parity_ok &= (
                            bool(ref.success) == bool(resist.success[i])
                            and ref.messages == int(resist.messages[i])
                            and ref.parallel_time == int(resist.parallel_time[i]))
                msgs_ok &= int(resist.messages.max()) <= 8 * logn**3
                floods &= float(resist.messages.mean()) >= logn**2 / 4
                resist_rate[(n, p)] = resist.success_rate()
                simple_rate[(n, p)] = simple.success_rate()
                if p <= 0.1:
                    resist_small_p.append(resist.success_rate())
                rows.append({
                    "n": n, "p_byzantine": p,
                    "resistant_success": round(resist.success_rate(), 4),
                    "simple_success": round(simple.success_rate(), 4),
                    "mean_msgs": round(float(resist.messages.mean()), 0),
                    "8log³n": round(8 * logn**3, 0),
                })
        checks = {
            "Thm 6.6: resistant lookup ≥ 99% correct at p ≤ 0.1": min(
                resist_small_p) >= 0.99,
            "message complexity O(log³ n)": msgs_ok,
            "messages are Ω(log² n) on average (it actually floods)": floods,
            # at p = 0.1 every point keeps an honest-majority cover whp —
            # the Thm 6.6 precondition — so the resistant lookup is near
            # perfect while the cheap lookup keeps trusting lone liars
            "simple lookup *does* fail under liars (contrast at p = 0.1)": max(
                simple_rate[(n, 0.1)] for n in sizes
            ) < min(resist_rate[(n, 0.1)] for n in sizes),
            f"batch bit-identical to scalar replay (n={sizes[0]}, all p)":
                parity_ok,
        }
        return ExperimentResult(
            experiment="E14",
            title="False-message-resistant lookup at scale (Thm 6.6)",
            paper_claim="log n parallel time, O(log³ n) messages, majority "
            "survives",
            rows=rows,
            checks=checks,
            notes=f"{pairs} pairs per cell, batched majority votes as counts "
            "over cover sets; scalar cross-check at the smallest size",
        )

    return timed(body)
