"""A1–A4 — ablations of the design choices DESIGN.md calls out.

* **A1 ring edges** — §2.1 adds ring edges "such that G_x contains a
  ring": without them, connectivity survives only while the
  discretization is smooth; with clustered ids the graph can shatter.
* **A2 caching threshold c** — §3.1 says c = Θ(log n) "may be updated
  over time": sweep c to expose the cache-size/server-load trade-off
  (small c: huge trees; large c: hot owner).
* **A3 smoothness ρ** — every §2 bound degrades linearly with ρ: compare
  uniform vs Multiple-Choice ids on one network size.
* **A4 one-phase vs two-phase routing** — Valiant-style randomisation
  (§2.2.2/§2.2.3) only pays off under adversarial permutations.
"""

from __future__ import annotations

import math
from typing import Dict, List

import networkx as nx
import numpy as np

from ..balance import MultipleChoice
from ..core import CacheSystem, CongestionCounter, DistanceHalvingNetwork, dh_lookup, fast_lookup
from ..sim.workload import bit_reversal_permutation
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("A1")
def ring_ablation(seed: int = 201, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 256
        rows: List[Dict] = []
        results: Dict[str, Dict[str, bool]] = {}
        for ids in ("balanced", "clustered"):
            for ring in (True, False):
                rng = spawn_many(seed + ring + 2 * (ids == "clustered"), 1)[0]
                net = DistanceHalvingNetwork(with_ring=ring, rng=rng)
                if ids == "balanced":
                    net.populate(n, selector=MultipleChoice(t=4))
                else:
                    for i in range(n // 2):
                        net.join(0.25 + i * 1e-8)
                    net.populate(n // 2)
                g = net.to_networkx(include_ring=ring)
                connected = nx.is_connected(g)
                results.setdefault(ids, {})[f"ring={ring}"] = connected
                rows.append({"ids": ids, "ring_edges": ring,
                             "connected": connected,
                             "avg_degree": round(net.average_degree(), 2)})
        checks = {
            "ring edges keep clustered ids connected": results["clustered"]["ring=True"],
            "smooth ids connected even without ring": results["balanced"]["ring=False"],
        }
        return ExperimentResult("A1", "Ablation: ring edges",
                                "§2.1 adds ring edges for unconditional connectivity",
                                rows, checks)

    return timed(body)


@register("A2")
def threshold_ablation(seed: int = 202, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 256 if quick else 512
        rng, route = spawn_many(seed, 2)
        rows: List[Dict] = []
        sizes, loads = [], []
        for c in (1, 2, int(math.log2(n)), 4 * int(math.log2(n)), n):
            net = DistanceHalvingNetwork(rng=np.random.default_rng(7))
            net.populate(n, selector=MultipleChoice(t=4))
            cache = CacheSystem(net, threshold=c)
            pts = list(net.points())
            for i in range(n):
                cache.request("hot", pts[i % n], route)
            tree = cache.tree_for("hot")
            max_hits = max(cache.cache_hits.values(), default=0)
            sizes.append(tree.size())
            loads.append(max_hits)
            rows.append({"c": c, "tree_size": tree.size(),
                         "4q/c": round(4 * n / c, 0),
                         "max_cache_hits": max_hits,
                         "copies": tree.size() - 1})
        checks = {
            "small c ⇒ big trees (storage cost)": sizes[0] > sizes[2] > sizes[-1],
            "huge c ⇒ hot owner (load cost)": loads[-1] >= loads[2],
            "c = Θ(log n) balances both": sizes[2] <= 4 * n / math.log2(n)
            and loads[2] <= 8 * math.log2(n) ** 2,
        }
        return ExperimentResult("A2", "Ablation: caching threshold c",
                                "§3.1: c = Θ(log n) is the sweet spot",
                                rows, checks)

    return timed(body)


@register("A3")
def smoothness_ablation(seed: int = 203, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 512
        lookups = 800 if quick else 2000
        rows: List[Dict] = []
        metrics = {}
        for ids, selector in (("uniform", None), ("multiple-choice", MultipleChoice(t=4))):
            rng, route = spawn_many(seed + (selector is None), 2)
            net = DistanceHalvingNetwork(rng=rng)
            net.populate(n, selector=selector)
            rho = net.smoothness()
            counter = CongestionCounter()
            pts = list(net.points())
            ts = []
            for _ in range(lookups):
                src = pts[int(route.integers(n))]
                res = fast_lookup(net, src, float(route.random()))
                ts.append(res.t)
                counter.record(res)
            metrics[ids] = {
                "rho": rho,
                "deg": net.max_out_degree(),
                "path": float(np.mean(ts)),
                "cong": counter.max_congestion(),
            }
            rows.append({"ids": ids, "rho": round(rho, 1),
                         "max_out_deg": net.max_out_degree(),
                         "mean_path": round(float(np.mean(ts)), 2),
                         "max_congestion": round(counter.max_congestion(), 4)})
        checks = {
            "smaller ρ ⇒ smaller max degree": metrics["multiple-choice"]["deg"]
            <= metrics["uniform"]["deg"],
            "smaller ρ ⇒ lower max congestion": metrics["multiple-choice"]["cong"]
            <= metrics["uniform"]["cong"],
        }
        return ExperimentResult("A3", "Ablation: smoothness ρ",
                                "every §2 bound carries a ρ factor",
                                rows, checks)

    return timed(body)


@register("A4")
def phase_ablation(seed: int = 204, quick: bool = False) -> ExperimentResult:
    """The textbook separation: on the exact De Bruijn configuration
    (equally spaced ids) the *deterministic* Fast Lookup routes the
    bit-reversal permutation with Θ(√n) max load — the classical lower
    bound for deterministic oblivious routing — while the Valiant-style
    two-phase lookup stays at O(log n) (Theorem 2.10)."""

    def body() -> ExperimentResult:
        from fractions import Fraction

        from ..sim.metrics import loglog_slope

        sizes = [256, 1024] if quick else [256, 1024, 4096]
        rng, route = spawn_many(seed, 2)
        rows: List[Dict] = []
        fast_loads, dh_loads = [], []
        for n in sizes:
            net = DistanceHalvingNetwork()
            for i in range(n):
                net.join(Fraction(i, n))
            pts = [float(p) for p in net.points()]
            pairs = bit_reversal_permutation(pts)
            cf, cd = CongestionCounter(), CongestionCounter()
            for src, tgt in pairs:
                cf.record(fast_lookup(net, src, tgt))
                cd.record(dh_lookup(net, src, tgt, route))
            fast_loads.append(cf.max_load())
            dh_loads.append(cd.max_load())
            rows.append({"n": n,
                         "fast(one-phase)_max": cf.max_load(),
                         "dh(two-phase)_max": cd.max_load(),
                         "sqrt(n)": round(math.sqrt(n), 0),
                         "log2n": round(math.log2(n), 1)})
        slope_fast = loglog_slope(sizes, fast_loads)
        slope_dh = loglog_slope(sizes, dh_loads)
        big = len(sizes) - 1
        checks = {
            f"one-phase load scales ~√n (slope {slope_fast:.2f})": slope_fast >= 0.35,
            f"two-phase load grows strictly slower (slope {slope_dh:.2f})": slope_dh
            <= slope_fast - 0.15,
            "two-phase max load ≤ 4·log n at every size": all(
                load <= 4 * math.log2(n) for load, n in zip(dh_loads, sizes)
            ),
        }
        if sizes[big] >= 4096:  # the absolute gap needs √n ≫ log n
            checks["at n≥4096 one-phase pays ≥ 1.4×"] = (
                fast_loads[big] >= 1.4 * dh_loads[big]
            )
        return ExperimentResult("A4", "Ablation: one- vs two-phase routing",
                                "§2.2.3: Valiant randomisation defeats adversarial perms "
                                "(bit-reversal on the exact De Bruijn ids)",
                                rows, checks)

    return timed(body)
