"""X1/X2 — extension experiments for remarks the paper leaves as asides.

X1 (§6.2 closing remark): storing items with an erasure code over the
replica clique instead of replication — same fault tolerance, a fraction
of the bytes (the Weatherspoon–Kubiatowicz comparison).

X2 (§1 footnote 1): iterative vs recursive lookup on the message level —
the combinatorial path is identical, but the transport cost is ≈2× and
the requester's visibility differs; measured on the discrete-event
protocol stack.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..balance import MultipleChoice
from ..core import DistanceHalvingNetwork
from ..faults import ErasureStore, OverlappingDHNetwork, random_failstop
from ..sim.protocol import build_protocol_network, run_protocol_lookup
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("X1")
def erasure_vs_replication(seed: int = 301, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 128 if quick else 512
        item_bytes = 4096
        trials = 20 if quick else 60
        rng = spawn_many(seed, 1)[0]
        net = OverlappingDHNetwork(n, rng)
        rows: List[Dict] = []
        avail: Dict[str, float] = {}
        storage: Dict[str, int] = {}
        for frac, label in ((0.5, "erasure k=n/2"), (1.0, "replication-equiv k=1")):
            if frac == 1.0:
                # plain replication: every cover stores the full item
                group = net.covers(net.item_hash("doc"))
                storage[label] = len(group) * item_bytes
                ok = 0
                for _ in range(trials):
                    plan = random_failstop(net.points, 0.25, rng)
                    ok += any(s not in plan.failed for s in group)
                avail[label] = ok / trials
                tol = len(group) - 1
            else:
                store = ErasureStore(net, data_fraction=frac)
                store.put("doc", b"x" * item_bytes)
                storage[label] = store.storage_bytes("doc")
                tol = store.tolerance("doc")
                ok = 0
                for _ in range(trials):
                    plan = random_failstop(net.points, 0.25, rng)
                    alive = set(net.points) - plan.failed
                    try:
                        ok += store.get("doc", alive=alive) == b"x" * item_bytes
                    except ValueError:
                        pass
                avail[label] = ok / trials
            rows.append({"scheme": label, "bytes_stored": storage[label],
                         "loss_tolerance": tol,
                         "availability@p=0.25": round(avail[label], 3)})
        checks = {
            "erasure stores ≈ half the bytes of replication": storage["erasure k=n/2"]
            <= 0.7 * storage["replication-equiv k=1"],
            # at p=0.25 the k=n/2 code's failure tail P(> n/2 of ~log n
            # shares lost) is ≈ 2%, so ≥ 0.9 demonstrates the trade cleanly
            "availability at p=0.25 ≥ 0.9 for both": min(avail.values()) >= 0.9,
        }
        return ExperimentResult("X1", "Erasure coding vs replication (§6.2 remark)",
                                "erasure codes beat replication in storage at equal "
                                "availability (Weatherspoon–Kubiatowicz)",
                                rows, checks,
                                notes=f"{item_bytes}-byte item, {trials} fail-stop draws at p=0.25")

    return timed(body)


@register("X2")
def iterative_vs_recursive(seed: int = 302, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 64 if quick else 256
        lookups = 60 if quick else 200
        rng, route = spawn_many(seed, 2)
        net = DistanceHalvingNetwork(rng=rng)
        net.populate(n, selector=MultipleChoice(t=4))
        sim = build_protocol_network(net, latency=lambda a, b: 1.0)
        pts = list(net.points())
        rows: List[Dict] = []
        stats: Dict[str, Dict[str, float]] = {}
        for style in ("recursive", "iterative"):
            msgs, hops, lat, ok = [], [], [], 0
            for k in range(lookups):
                src = pts[int(route.integers(n))]
                out = run_protocol_lookup(sim, net, src, float(route.random()),
                                          route, style=style, request_id=k)
                ok += out.done
                msgs.append(out.messages)
                hops.append(out.hops)
                lat.append(out.completed_at - (0 if style == "recursive" else 0))
            stats[style] = {"msgs": float(np.mean(msgs)), "hops": float(np.mean(hops)),
                            "ok": ok / lookups}
            rows.append({"style": style, "success": ok / lookups,
                         "mean_msgs": round(float(np.mean(msgs)), 1),
                         "mean_hops": round(float(np.mean(hops)), 1)})
        checks = {
            "both styles always reach the owner": all(
                s["ok"] == 1.0 for s in stats.values()
            ),
            "iterative costs ≥1.5× the messages (fn. 1)": stats["iterative"]["msgs"]
            >= 1.5 * stats["recursive"]["msgs"],
            "combinatorial hops comparable (same algorithm)": abs(
                stats["iterative"]["hops"] - stats["recursive"]["hops"]
            )
            <= 0.35 * stats["recursive"]["hops"],
        }
        return ExperimentResult("X2", "Iterative vs recursive lookup (fn. 1)",
                                "transport style changes cost, not the algorithm",
                                rows, checks, notes=f"n={n}, {lookups} lookups, unit latency")

    return timed(body)
