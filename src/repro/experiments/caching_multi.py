"""E8 — multiple hotspots (Theorem 3.8).

Arbitrary demands ``q_i`` with ``Σ q_i = n`` over ``n`` items, hashed by
a ``log n``-wise independent function; c = Θ(log n).  Claims:

(i)  max distinct items cached at any server = O(log n) w.h.p.;
(ii) max times any server supplies a data item = O(log² n) w.h.p.
     (expected O(|s(V)|·n) = O(1) per server for smooth ids).

Workloads: Zipf(1.2) demand (realistic skew) and an all-on-8-items
adversarial demand.  A no-caching baseline column shows what the hottest
owner would suffer.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..balance import MultipleChoice
from ..core import CacheSystem, DistanceHalvingNetwork
from ..sim.workload import single_hotspot_demands, zipf_demands
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


def _drive(net, cache, demands, pts, route) -> None:
    reqs = []
    for item, q in enumerate(demands):
        reqs.extend([f"item{item}"] * q)
    order = route.permutation(len(reqs))
    for k in order:
        src = pts[int(route.integers(len(pts)))]
        cache.request(reqs[int(k)], src, route)


@register("E8")
def run(seed: int = 8, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [128, 512] if quick else [128, 256, 512, 1024]
        rows: List[Dict] = []
        items_ok = supply_ok = True
        for n in sizes:
            for workload in ("zipf", "adversarial"):
                rng, route, drng = spawn_many(seed * 37 + n + (workload == "zipf"), 3)
                net = DistanceHalvingNetwork(rng=rng)
                net.populate(n, selector=MultipleChoice(t=4))
                cache = CacheSystem(net, threshold=max(2, int(math.ceil(math.log2(n)))))
                pts = list(net.points())
                if workload == "zipf":
                    demands = zipf_demands(n, n, drng, exponent=1.2)
                else:
                    demands = [0] * n
                    for j in range(8):
                        demands[j] = n // 8
                _drive(net, cache, demands, pts, route)
                max_items = cache.max_items_cached()
                max_supply = max(cache.cache_hits.values(), default=0)
                hottest_q = max(demands)
                logn = math.log2(n)
                items_ok &= max_items <= 4 * logn
                supply_ok &= max_supply <= 8 * logn**2
                rows.append(
                    {
                        "n": n,
                        "workload": workload,
                        "c": cache.c,
                        "max_items_cached": max_items,
                        "log n": round(logn, 1),
                        "max_supply": max_supply,
                        "log²n": round(logn**2, 0),
                        "copies": cache.total_copies(),
                        "hottest_q(no-cache load)": hottest_q,
                    }
                )
        checks = {
            "Thm 3.8(i): max items cached per server O(log n)": items_ok,
            "Thm 3.8(ii): max supplies per server O(log² n)": supply_ok,
            "caching spreads hottest item below its raw demand": all(
                r["max_supply"] < r["hottest_q(no-cache load)"] or r["hottest_q(no-cache load)"] <= r["log²n"]
                for r in rows
            ),
        }
        return ExperimentResult(
            experiment="E8",
            title="Multiple hotspots (Theorem 3.8)",
            paper_claim="caches O(log n) items/server; supplies O(log² n)/server",
            rows=rows,
            checks=checks,
        )

    return timed(body)
