"""E8 — multiple hot spots at scale (Theorem 3.8, arbitrary demand).

Per the §3.4 model each epoch carries an arbitrary demand over ``n``
items summing to ``n`` (one request per server on average); the full
cells sustain that demand for as many epochs as it takes to push ≥ 10⁶
requests through each network — Zipf(1.2) skew redrawn every epoch, and
an adversarial fixed demand hammering 8 items — all through the
vectorized :class:`~repro.core.batch_cache.BatchCacheEngine` with an
``advance_epoch`` collapse at every boundary.  Measured:

* ≤ ``O(log n)`` distinct items cached per server (Theorem 3.8 (i)),
  measured at the final epoch's peak;
* every server supplies ``O(log² n)`` requests **per epoch**
  (Theorem 3.8 (ii)) — cumulative hits checked against
  ``8 · epochs · log² n``;
* the hottest item's demand is spread: no server supplies more than the
  hottest item demanded in total;
* a scalar bit-parity cell at n = 128 (salted, multi-item, two epochs):
  the engine must replay exactly on the scalar
  :class:`~repro.core.caching.CacheSystem` (PR 4/5 recipe).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..balance import MultipleChoice
from ..core import BatchCacheEngine, DistanceHalvingNetwork
from ..sim.rng import spawn_many
from ..sim.workload import DH_TAU_DIGITS, demand_stream, zipf_demands
from .caching_bench import trace_parity
from .common import ExperimentResult, register, timed


@register("E8")
def run(seed: int = 8, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [128, 512] if quick else [1024, 4096, 16384]
        workloads = ["zipf", "adversarial"]
        rows: List[Dict] = []
        checks: Dict[str, bool] = {}
        items_ok = supply_ok = spread_ok = True
        for n in sizes:
            for workload in workloads:
                rng, route, drng = spawn_many(
                    seed * 37 + n + (workload == "zipf"), 3)
                net = DistanceHalvingNetwork(rng=rng)
                net.populate(n, selector=MultipleChoice(t=4))
                c = max(2, int(math.ceil(math.log2(n))))
                epochs = 4 if quick else max(1, math.ceil(1_000_000 / n))
                labels = [f"item{j}" for j in range(n)]
                engine = BatchCacheEngine(net, labels, threshold=c)
                pts = net.segments.as_array()
                total_demand = np.zeros(n, dtype=np.int64)
                max_items = 0
                for e in range(epochs):
                    if workload == "zipf":
                        demands = zipf_demands(n, n, drng, exponent=1.2)
                    else:
                        demands = [n // 8 if j < 8 else 0 for j in range(n)]
                    stream = demand_stream(demands, drng)
                    src = pts[route.integers(0, n, size=stream.size)]
                    engine.serve_batch(stream, src, rng=route)
                    total_demand += np.asarray(demands, dtype=np.int64)
                    # Thm 3.8 (i) is a statement about the live epoch:
                    # measure at the peak, before the collapse
                    if e == epochs - 1:
                        max_items = engine.max_items_cached()
                    engine.advance_epoch()
                total_q = int(total_demand.sum())
                max_supply = int(engine.server_cache_hits().max())
                hottest_q = int(total_demand.max())
                logn = math.log2(n)
                items_ok &= max_items <= 4 * logn
                supply_ok &= max_supply <= 8 * epochs * logn**2
                spread_ok &= max_supply < hottest_q or hottest_q <= logn**2
                rows.append(
                    {
                        "n": n,
                        "workload": workload,
                        "epochs": epochs,
                        "q_total": total_q,
                        "c": c,
                        "max_items": max_items,
                        "4·logn": round(4 * logn, 0),
                        "max_supply": max_supply,
                        "8e·log²n": round(8 * epochs * logn**2, 0),
                        "hottest_q": hottest_q,
                        "copies": engine.total_copies(),
                    }
                )
        # scalar bit-parity cell: multi-item Zipf, salted, two epochs
        pn, pq = 128, 360
        prng, proute, pdrng = spawn_many(seed * 37 + pn + 7, 3)
        pnet = DistanceHalvingNetwork(rng=prng)
        pnet.populate(pn, selector=MultipleChoice(t=4))
        p_items = [f"item{j}" for j in range(16)]
        w = np.arange(1, 17, dtype=np.float64) ** -1.2
        p_idx = pdrng.choice(16, size=pq, p=w / w.sum())
        p_src = pnet.segments.as_array()[proute.integers(0, pn, size=pq)]
        p_tau = proute.integers(0, 2, size=(pq, DH_TAU_DIGITS))
        parity_ok = trace_parity(pnet, p_items, p_idx, p_src, p_tau,
                                 threshold=5, salts=2, epochs=2)

        checks["Thm 3.8(i): ≤ 4·log n items cached per server"] = items_ok
        checks["Thm 3.8(ii): supply ≤ 8·epochs·log² n per server"] = supply_ok
        checks["hot demand spread below the hottest item's total"] = spread_ok
        checks["batch/scalar bit parity at n=128 (salted, 2 epochs)"] = bool(
            parity_ok)
        return ExperimentResult(
            experiment="E8",
            title="Multiple hot spots under sustained demand (Thm 3.8)",
            paper_claim="O(log n) items/server, O(log² n) supplied requests per epoch",
            rows=rows,
            checks=checks,
        )

    return timed(body)
