"""Baseline batch-router shoot-out: per-topology speedup + parity.

The measurement helper :func:`measure_baselines` drives every Table 1
competitor through its compiled
:class:`~repro.baselines.base.BaselineBatchRouter` — the same workload
shape as the E1 harness (uniform sources, uniform targets, CSR
congestion accounting) — and times the scalar per-hop ``lookup_path``
loop on a subsample of the identical pairs.  Each scheme's subsample is
additionally *replayed*: batch server paths must equal the scalar paths
element-for-element and the scalar :class:`CongestionCounter` summary
must equal the :class:`BatchCongestion` summary bit-for-bit, so the
reported speedup is for provably identical work.

Shared by ``benchmarks/bench_table1.py`` and the ``bench-baselines``
CLI subcommand (the CI smoke + regression-gate artifact).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence

from ..baselines import (
    CanNetwork,
    ChordNetwork,
    DistanceHalvingAdapter,
    KleinbergRing,
    KoordeNetwork,
    TapestryNetwork,
    ViceroyNetwork,
)
from ..core.routing_stats import BatchCongestion, CongestionCounter
from ..sim.rng import spawn_many

__all__ = [
    "SCHEME_BUILDERS",
    "format_baselines_report",
    "measure_baselines",
]

#: Scheme name → builder.  All lookup paths here are deterministic given
#: the built topology, so every scheme is replayable for the parity
#: check (the DH row uses the greedy §2.2.1 mode for exactly that
#: reason; the randomized §2.2.2 mode is parity-tested via fixed tau in
#: bench-throughput).
SCHEME_BUILDERS = {
    "chord": lambda n, rng: ChordNetwork(n, rng),
    "tapestry": lambda n, rng: TapestryNetwork(n, rng, base=2),
    "can": lambda n, rng: CanNetwork(n, rng, d=2),
    "small-world": lambda n, rng: KleinbergRing(n, rng),
    "viceroy": lambda n, rng: ViceroyNetwork(n, rng),
    "koorde": lambda n, rng: KoordeNetwork(n, rng),
    "dh-fast": lambda n, rng: DistanceHalvingAdapter(n, rng, delta=2,
                                                     mode="fast"),
}


def measure_baselines(
    n: int = 16384,
    lookups: int = 100_000,
    seed: int = 0,
    scalar_sample: int = 400,
    schemes: Optional[Sequence[str]] = None,
    chunk: int = 8192,
) -> Dict:
    """Time batch vs scalar routing per scheme on identical workloads.

    For every scheme: build the overlay, compile its batch router, route
    ``lookups`` uniform pairs chunked through :class:`BatchCongestion`
    (the timed batch leg), route the first ``scalar_sample`` of the same
    pairs through the scalar ``lookup_path`` + ``CongestionCounter``
    loop (the timed scalar leg), and verify the batch replay of that
    subsample hop-for-hop and summary-for-summary.
    """
    names = list(schemes) if schemes is not None else list(SCHEME_BUILDERS)
    unknown = [s for s in names if s not in SCHEME_BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown scheme(s) {unknown}; have {sorted(SCHEME_BUILDERS)}"
        )
    per_scheme: Dict[str, Dict] = {}
    for i, name in enumerate(names):
        build_rng, probe = spawn_many(seed * 59 + 7 * i + n, 2)
        t0 = time.perf_counter()
        dht = SCHEME_BUILDERS[name](n, build_rng)
        build_secs = time.perf_counter() - t0
        t0 = time.perf_counter()
        router = dht.batch_router()
        compile_secs = time.perf_counter() - t0

        src = probe.integers(0, n, size=lookups)
        tgt = probe.random(lookups)
        m = min(scalar_sample, lookups)

        cong = BatchCongestion()
        t0 = time.perf_counter()
        hops, _owners = router.route_chunked(
            src, tgt, congestion=cong, chunk=chunk, rng=probe
        )
        batch_secs = time.perf_counter() - t0

        ids = list(dht.node_ids())
        counter = CongestionCounter()
        scalar_paths: List[List[float]] = []
        t0 = time.perf_counter()
        for k in range(m):
            path = [
                float(x)
                for x in dht.lookup_path(ids[int(src[k])], float(tgt[k]), probe)
            ]
            counter.record_path(path)
            scalar_paths.append(path)
        scalar_secs = time.perf_counter() - t0

        # replay the scalar subsample through the batch spine: paths and
        # congestion summaries must agree exactly
        replay = router.route_batch(src[:m], tgt[:m], rng=probe)
        replay_cong = BatchCongestion()
        replay_cong.record_batch(replay)
        parity = all(
            scalar_paths[k] == replay.server_path(k) for k in range(m)
        ) and counter.summary(n) == replay_cong.summary(n)

        batch_rate = lookups / batch_secs if batch_secs > 0 else math.inf
        scalar_rate = m / scalar_secs if scalar_secs > 0 else math.inf
        per_scheme[name] = {
            "scheme": dht.name,
            "build_secs": build_secs,
            "compile_secs": compile_secs,
            "batch_secs": batch_secs,
            "scalar_secs": scalar_secs,
            "batch_rate": batch_rate,
            "scalar_rate": scalar_rate,
            "speedup": batch_rate / scalar_rate if scalar_rate > 0 else math.inf,
            "parity_ok": bool(parity),
            "mean_path": float(hops.mean()) if lookups else 0.0,
            "max_congestion": cong.max_congestion(),
            "mean_degree": float(dht.mean_degree()),
        }
    speedups = [row["speedup"] for row in per_scheme.values()]
    return {
        "n": n,
        "lookups": lookups,
        "scalar_sample": min(scalar_sample, lookups),
        "schemes": per_scheme,
        "all_parity_ok": all(row["parity_ok"] for row in per_scheme.values()),
        "min_speedup_measured": min(speedups) if speedups else math.inf,
    }


def format_baselines_report(result: Dict) -> str:
    """Human-readable per-scheme table of one measurement dict."""
    head = (
        f"{'scheme':<12} {'build(s)':>8} {'batch/s':>12} {'scalar/s':>10} "
        f"{'speedup':>8} {'mean_path':>9} {'parity':>7}"
    )
    lines = [
        f"baseline shoot-out: n={result['n']}  lookups={result['lookups']}  "
        f"scalar sample={result['scalar_sample']} per scheme",
        head,
        "-" * len(head),
    ]
    for name, row in result["schemes"].items():
        lines.append(
            f"{name:<12} {row['build_secs']:>8.2f} {row['batch_rate']:>12,.0f} "
            f"{row['scalar_rate']:>10,.0f} {row['speedup']:>7.1f}x "
            f"{row['mean_path']:>9.2f} "
            f"{'ok' if row['parity_ok'] else 'MISMATCH':>7}"
        )
    lines.append(
        f"min speedup: {result['min_speedup_measured']:.1f}x   "
        f"parity: {'PASS' if result['all_parity_ok'] else 'FAIL'}"
    )
    return "\n".join(lines)
