"""E12 — the dynamic expander (Thm 5.1, Cor 5.2, Lem 5.3).

Three layers of verification:

1. **continuous** — Monte-Carlo boundary measure of several regions
   under the Gabber–Galil transforms vs the ``(2−√3)/2`` constant;
2. **discrete** — spectral gap and sampled vertex expansion of the
   discretized network across sizes (expansion must not degrade with n —
   the defining property of an expander family);
3. **smoothness** — the §5.3 2D Multiple Choice delivers the Definition 7
   smoothness that *certifies* the expansion (Lemma 5.3), with i.i.d.
   uniform ids as the failing control.
"""

from __future__ import annotations

from typing import Dict, List


from ..balance import TwoDimMultipleChoice, coarse_grid_side, fine_grid_side
from ..balance.two_dim import cell_of
from ..expander import (
    GG_EXPANSION_CONSTANT,
    GabberGalilNetwork,
    sampled_vertex_expansion,
    spectral_gap,
)
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("E12")
def run(seed: int = 12, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        rows: List[Dict] = []
        checks: Dict[str, bool] = {}
        rng = spawn_many(seed * 53, 1)[0]

        # 1. continuous Theorem 5.1
        regions = {
            "quarter-box": lambda p: (p[:, 0] < 0.5) & (p[:, 1] < 0.5),
            "strip-0.3": lambda p: p[:, 0] < 0.3,
            "disc-r0.3": lambda p: ((p[:, 0] - 0.5) ** 2 + (p[:, 1] - 0.5) ** 2) < 0.09,
        }
        cont_ok = True
        for name, region in regions.items():
            mu_a, mu_b = GabberGalilNetwork.continuous_boundary_measure(
                region, rng, samples=60_000 if quick else 200_000
            )
            ratio = mu_b / mu_a
            cont_ok &= ratio >= GG_EXPANSION_CONSTANT * 0.9
            rows.append({"layer": "continuous", "object": name, "n": "-",
                         "mu(A)": round(mu_a, 3), "value": round(ratio, 3),
                         "paper_bound": round(GG_EXPANSION_CONSTANT, 3)})
        checks["Thm 5.1: µ(δA)/µ(A) ≥ (2−√3)/2 on all regions"] = cont_ok

        # 2. discrete expander across sizes
        sizes = [64, 128] if quick else [64, 128, 256, 512]
        gaps, hs = [], []
        for n in sizes:
            nrng = spawn_many(seed * 59 + n, 1)[0]
            net = GabberGalilNetwork(n=n, rng=nrng,
                                     samples_per_cell=16 if quick else 24)
            g = net.to_networkx()
            lam = spectral_gap(g)
            h = sampled_vertex_expansion(g, nrng, trials=48,
                                         positions=net.voronoi.points)
            gaps.append(lam)
            hs.append(h)
            rows.append({"layer": "discrete", "object": "GG network", "n": n,
                         "mu(A)": "-", "value": round(lam, 3),
                         "paper_bound": f"h≥{h:.2f}"})
        checks["Cor 5.2: spectral gap bounded away from 0 at every n"] = min(gaps) > 0.05
        checks["expansion does not degrade with n (family property)"] = (
            min(gaps) >= max(gaps) * 0.3
        )
        checks["sampled vertex expansion ≥ GG-constant/2"] = min(hs) >= (
            GG_EXPANSION_CONSTANT / 2
        )

        # 3. smoothness via 2D multiple choice (Lemma 5.3) vs uniform
        n = 256 if quick else 512
        arng, urng = spawn_many(seed * 61, 2)
        algo = TwoDimMultipleChoice(n, t=4)
        algo.populate(rng=arng)
        fine = fine_grid_side(n)
        cells = [cell_of(p, fine) for p in algo.points]
        mc_collisions = len(cells) - len(set(cells))
        uni = [tuple(p) for p in urng.random((n, 2))]
        uni_cells = [cell_of(p, fine) for p in uni]
        uni_collisions = len(uni_cells) - len(set(uni_cells))
        coarse = coarse_grid_side(n)
        mc_cov = len({cell_of(p, coarse) for p in algo.points}) / coarse**2
        uni_cov = len({cell_of(p, coarse) for p in uni}) / coarse**2
        rows.append({"layer": "smoothness", "object": "2D-MC", "n": n,
                     "mu(A)": f"cov={mc_cov:.2f}", "value": mc_collisions,
                     "paper_bound": "0 collisions"})
        rows.append({"layer": "smoothness", "object": "uniform", "n": n,
                     "mu(A)": f"cov={uni_cov:.2f}", "value": uni_collisions,
                     "paper_bound": "(control)"})
        checks["Lem 5.3: 2D-MC has no fine-cell collisions"] = mc_collisions == 0
        checks["2D-MC coverage beats uniform control"] = mc_cov > uni_cov

        return ExperimentResult(
            experiment="E12",
            title="Dynamic expander (Thm 5.1, Cor 5.2, Lem 5.3)",
            paper_claim="GG expansion (2−√3)/2; smooth discretization expands Ω(1/ρ)",
            rows=rows,
            checks=checks,
        )

    return timed(body)
