"""E5 — permutation routing (Theorems 2.10, 2.11).

All ``n`` servers route simultaneously: Theorem 2.10 bounds the max
per-server load by ``O(log n)`` w.h.p. for *every* permutation (the
Valiant-style randomisation defeats adversarial patterns — we include
bit-reversal, the classic killer of deterministic oblivious routing, and
a cyclic shift); Theorem 2.11 extends this to hashed distinct items
under a ``log n``-wise independent hash.

As a contrast column we also route the same permutations with the
*deterministic* Fast Lookup, where adversarial patterns do hurt.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..balance import MultipleChoice
from ..core import CongestionCounter, DistanceHalvingNetwork, dh_lookup, fast_lookup
from ..hashing.kwise import KWiseHash
from ..sim.workload import bit_reversal_permutation, random_permutation, shift_permutation
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


def _route_all(net, pairs, route, algo: str) -> int:
    c = CongestionCounter()
    for src, tgt in pairs:
        if algo == "dh":
            c.record(dh_lookup(net, src, tgt, route))
        else:
            c.record(fast_lookup(net, src, tgt))
    return c.max_load()


@register("E5")
def run(seed: int = 5, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [128, 512] if quick else [128, 256, 512, 1024]
        rows: List[Dict] = []
        norm_dh: List[float] = []
        adversarial_gaps: List[float] = []
        for n in sizes:
            rng, route, hrng = spawn_many(seed * 19 + n, 3)
            net = DistanceHalvingNetwork(rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            pts = list(net.points())
            h = KWiseHash(max(8, int(math.log2(n))), hrng)
            workloads = {
                "random-perm": random_permutation(pts, route),
                "bit-reversal": bit_reversal_permutation(pts),
                "shift-half": shift_permutation(pts, 0.5),
                "hashed-items": [(p, h(f"item-{i}")) for i, p in enumerate(pts)],
            }
            row: Dict = {"n": n, "log2n": round(math.log2(n), 1)}
            for name, pairs in workloads.items():
                load_dh = _route_all(net, pairs, route, "dh")
                row[f"{name}_dh"] = load_dh
                norm_dh.append(load_dh / math.log2(n))
                if name == "bit-reversal":
                    load_fast = _route_all(net, pairs, route, "fast")
                    row["bit-reversal_fast"] = load_fast
                    adversarial_gaps.append(load_fast / max(1, load_dh))
            rows.append(row)
        checks = {
            "Thm 2.10/2.11: DH max load ≤ c·log n on every workload": max(norm_dh)
            <= 8.0,
            "load is Ω(log n) too (averaging argument)": min(norm_dh) >= 0.5,
            "randomisation value: deterministic fast lookup worse on ≥1 "
            "adversarial size": max(adversarial_gaps) >= 1.2,
        }
        return ExperimentResult(
            experiment="E5",
            title="Permutation routing load (Thm 2.10 / 2.11)",
            paper_claim="max per-server load O(log n) w.h.p. for every permutation",
            rows=rows,
            checks=checks,
            notes="columns: max messages handled by any server when all n route at once",
        )

    return timed(body)
