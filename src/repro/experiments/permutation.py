"""E5 — permutation routing (Theorems 2.10, 2.11).

All ``n`` servers route simultaneously: Theorem 2.10 bounds the max
per-server load by ``O(log n)`` w.h.p. for *every* permutation (the
Valiant-style randomisation defeats adversarial patterns — we include
bit-reversal, the classic killer of deterministic oblivious routing, and
a cyclic shift); Theorem 2.11 extends this to hashed distinct items
under a ``log n``-wise independent hash.

As a contrast column we also route the same permutations with the
*deterministic* Fast Lookup, where adversarial patterns do hurt.

Every workload is routed as **one batch** through
``net.router(auto_refresh=True)`` with CSR path accounting
(:func:`~repro.sim.workload.route_pairs` into a
:class:`~repro.core.routing_stats.BatchCongestion`), scaling the sweep
from the old 1024-server scalar-loop ceiling to 16384; at the smallest
size the bit-reversal workload is replayed through the scalar engine
(same dh digit strings) and the accountings must match bit-for-bit.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..balance import MultipleChoice
from ..core import (
    BatchCongestion,
    CongestionCounter,
    DistanceHalvingNetwork,
    lookup_many,
)
from ..hashing.kwise import KWiseHash
from ..sim.workload import (
    DH_TAU_DIGITS,
    bit_reversal_permutation,
    random_permutation,
    route_pairs,
    shift_permutation,
)
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


def _route_all(router, pairs, route, algo: str, delta: int,
               tau: np.ndarray = None) -> BatchCongestion:
    """One workload → one routed batch → one CSR-accounted load tally."""
    c = BatchCongestion()
    if algo == "dh" and tau is None:
        tau = route.integers(0, delta, size=(len(pairs), DH_TAU_DIGITS))
    route_pairs(router, pairs, algorithm=algo, tau=tau, congestion=c)
    return c


@register("E5")
def run(seed: int = 5, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [128, 512] if quick else [1024, 4096, 16384]
        rows: List[Dict] = []
        norm_dh: List[float] = []
        adversarial_gaps: List[float] = []
        parity_ok = True
        for n in sizes:
            rng, route, hrng = spawn_many(seed * 19 + n, 3)
            net = DistanceHalvingNetwork(rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            router = net.router(auto_refresh=True, with_adjacency=True)
            pts = list(net.points())
            h = KWiseHash(max(8, int(math.log2(n))), hrng)
            workloads = {
                "random-perm": random_permutation(pts, route),
                "bit-reversal": bit_reversal_permutation(pts),
                "shift-half": shift_permutation(pts, 0.5),
                "hashed-items": [(p, h(f"item-{i}")) for i, p in enumerate(pts)],
            }
            row: Dict = {"n": n, "log2n": round(math.log2(n), 1)}
            for name, pairs in workloads.items():
                tally = _route_all(router, pairs, route, "dh", net.delta)
                load_dh = tally.max_load()
                row[f"{name}_dh"] = load_dh
                norm_dh.append(load_dh / math.log2(n))
                if name == "bit-reversal":
                    fast_tally = _route_all(router, pairs, route, "fast",
                                            net.delta)
                    load_fast = fast_tally.max_load()
                    row["bit-reversal_fast"] = load_fast
                    adversarial_gaps.append(load_fast / max(1, load_dh))
                    if n == sizes[0]:
                        # scalar cross-check: same pairs, same digit
                        # strings, bit-identical accounting
                        tau = route.integers(0, net.delta, size=(n, DH_TAU_DIGITS))
                        batch = _route_all(router, pairs, route, "dh",
                                           net.delta, tau=tau)
                        scal = CongestionCounter()
                        srcs = [p for p, _ in pairs]
                        tgts = [t for _, t in pairs]
                        for r in lookup_many(net, srcs, tgts, algorithm="dh",
                                             taus=[list(t_) for t_ in tau]):
                            scal.record(r)
                        parity_ok &= batch.summary(n) == scal.summary(n)
                        scal_f = CongestionCounter()
                        for r in lookup_many(net, srcs, tgts):
                            scal_f.record(r)
                        parity_ok &= (fast_tally.summary(n)
                                      == scal_f.summary(n))
            rows.append(row)
        checks = {
            "Thm 2.10/2.11: DH max load ≤ c·log n on every workload": max(norm_dh)
            <= 8.0,
            "load is Ω(log n) too (averaging argument)": min(norm_dh) >= 0.5,
            "randomisation value: deterministic fast lookup worse on ≥1 "
            "adversarial size": max(adversarial_gaps) >= 1.2,
            f"batch CSR accounting bit-identical to scalar counters "
            f"(n={sizes[0]}, bit-reversal)": parity_ok,
        }
        return ExperimentResult(
            experiment="E5",
            title="Permutation routing load (Thm 2.10 / 2.11)",
            paper_claim="max per-server load O(log n) w.h.p. for every permutation",
            rows=rows,
            checks=checks,
            notes="columns: max messages handled by any server when all n "
            "route at once; workloads batch-routed with CSR accounting",
        )

    return timed(body)
