"""X4 — churn soak: bulk routing throughput while the membership churns.

Not a paper artefact: the dynamic counterpart of X3.  The paper's §2.1
claim is that joins and leaves are *local* (O(log n) state touched per
op); the extension claim tested here is that the vectorized batch engine
inherits that locality — an ``auto_refresh`` router re-syncs after every
membership change with an O(affected-region) incremental patch instead
of an O(n log n) recompile, so lookups/sec stay high while `run_churn`
traces (including a §4.1-style 50% mass departure) interleave with
100k-lookup batches.

The measurement helper :func:`measure_churn_soak` is shared by this
experiment, ``benchmarks/bench_churn.py`` and the ``bench-churn`` CLI
subcommand.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional

import numpy as np

from ..balance import MultipleChoice
from ..core import DistanceHalvingNetwork
from ..sim.churn import ChurnTrace, run_churn
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed

__all__ = ["measure_churn_soak", "format_churn_report"]


def _time_full_compile(net: DistanceHalvingNetwork, reps: int = 3) -> float:
    """Median wall time of a from-scratch ``compile_router()``."""
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        net.compile_router()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _route_batch(router, net, route_rng, lookups: int) -> Dict:
    """One bulk fast-lookup batch + owner cross-check against the oracle."""
    pts = net.segments.as_array()
    sources = pts[route_rng.integers(0, net.n, size=lookups)]
    targets = route_rng.random(lookups)
    t0 = time.perf_counter()
    res = router.batch_fast_lookup(sources, targets)
    secs = time.perf_counter() - t0
    owners_ok = bool(
        np.array_equal(res.owner_idx, net.segments.cover_array(targets))
    )
    return {
        "rate": lookups / secs if secs > 0 else math.inf,
        "owners_ok": owners_ok,
        "mean_hops": float(res.hops.mean()),
    }


def measure_churn_soak(
    n: int = 4096,
    lookups: int = 100_000,
    phases: int = 2,
    churn_ops: int = 256,
    leave_prob: float = 0.3,
    mass_fraction: float = 0.5,
    mass_n: Optional[int] = None,
    seed: int = 0,
    sample_every: int = 32,
    churn_budget: Optional[int] = None,
) -> Dict:
    """Interleave churn traces with bulk lookup batches on one network.

    Builds an ``n``-server Multiple-Choice-balanced network and an
    ``auto_refresh`` router, then alternates ``phases`` rounds of
    ``churn_ops``-step `run_churn` traces (router re-synced after every
    single op via the ``on_op`` hook) with ``lookups``-sized
    ``batch_fast_lookup`` batches, and finishes with a mass-departure
    trace (``mass_n`` joins then ``mass_fraction`` of them leaving,
    §4.1) plus a final batch.  Every batch's owners are cross-checked
    against the live segment map, so a stale router cannot go unnoticed.

    Returns a dict with per-phase rows, the per-op incremental refresh
    cost, the full-compile baseline, and the refresh speedup
    ``full_compile_secs / refresh_secs_per_op``.
    """
    build_rng, churn_rng, route_rng = spawn_many(seed * 23 + n, 3)
    net = DistanceHalvingNetwork(rng=build_rng)
    selector = MultipleChoice(t=4)
    net.populate(n, selector=selector)

    full_compile_secs = _time_full_compile(net)
    router = net.router(auto_refresh=True, churn_budget=churn_budget)

    def on_op(step, op):
        router.refresh()

    rows = []
    base = _route_batch(router, net, route_rng, lookups)
    rows.append({
        "phase": "baseline",
        "n": net.n,
        "rho": round(float(net.smoothness()), 2),
        "klookups_per_sec": round(base["rate"] / 1e3, 1),
        "refresh_us_per_op": 0.0,
        "mean_touched": 0.0,
        "owners": "ok" if base["owners_ok"] else "STALE",
    })
    owners_ok = base["owners_ok"]

    for phase in range(phases):
        trace = ChurnTrace.generate(churn_rng, steps=churn_ops,
                                    leave_prob=leave_prob, warmup=0)
        stats0 = (router.refresh_stats.ops_synced(),
                  router.refresh_stats.seconds)
        report = run_churn(net, trace, churn_rng, selector=selector,
                           sample_every=sample_every, on_op=on_op)
        ops = router.refresh_stats.ops_synced() - stats0[0]
        secs = router.refresh_stats.seconds - stats0[1]
        batch = _route_batch(router, net, route_rng, lookups)
        owners_ok &= batch["owners_ok"]
        rows.append({
            "phase": f"churn{phase + 1}",
            "n": net.n,
            "rho": round(float(net.smoothness()), 2),
            "klookups_per_sec": round(batch["rate"] / 1e3, 1),
            "refresh_us_per_op": round(1e6 * secs / max(1, ops), 1),
            "mean_touched": round(report.mean_touched(), 1),
            "owners": "ok" if batch["owners_ok"] else "STALE",
        })

    # §4.1 stress: a cohort joins, then mass_fraction of the network leaves
    m = mass_n if mass_n is not None else min(net.n, 16384)
    trace = ChurnTrace.mass_departure(churn_rng, n=m, fraction=mass_fraction)
    stats0 = (router.refresh_stats.ops_synced(), router.refresh_stats.seconds)
    report = run_churn(net, trace, churn_rng, selector=selector,
                       sample_every=sample_every, on_op=on_op)
    ops = router.refresh_stats.ops_synced() - stats0[0]
    secs = router.refresh_stats.seconds - stats0[1]
    final = _route_batch(router, net, route_rng, lookups)
    owners_ok &= final["owners_ok"]
    rows.append({
        "phase": f"mass-{int(mass_fraction * 100)}%",
        "n": net.n,
        "rho": round(float(net.smoothness()), 2),
        "klookups_per_sec": round(final["rate"] / 1e3, 1),
        "refresh_us_per_op": round(1e6 * secs / max(1, ops), 1),
        "mean_touched": round(report.mean_touched(), 1),
        "owners": "ok" if final["owners_ok"] else "STALE",
    })

    stats = router.refresh_stats
    per_op = stats.seconds_per_op()
    return {
        "n": n,
        "lookups": lookups,
        "rows": rows,
        "owners_ok": owners_ok,
        "final_n": net.n,
        "final_smoothness": float(net.smoothness()) if net.n >= 2 else math.inf,
        "baseline_rate": base["rate"],
        "final_rate": final["rate"],
        "full_compile_secs": full_compile_secs,
        "refresh_secs_per_op": per_op,
        "refresh_speedup": (full_compile_secs / per_op) if per_op > 0
        else math.inf,
        "refreshes": stats.refreshes,
        "incremental_refreshes": stats.incremental,
        "full_rebuilds": stats.full_rebuilds,
        "ops_replayed": stats.ops_replayed,
        "ops_absorbed": stats.ops_absorbed,
        "mean_touched": report.mean_touched(),
    }


def format_churn_report(result: Dict) -> str:
    """Human-readable multi-line summary of one churn-soak run."""
    from .common import format_rows

    lines = [
        f"churn soak: start n={result['n']}  final n={result['final_n']}  "
        f"{result['lookups']} lookups per batch",
        format_rows(result["rows"]),
        f"refresh: {result['ops_replayed']} membership ops replayed "
        f"incrementally + {result['ops_absorbed']} absorbed by rebuilds "
        f"({result['incremental_refreshes']} incremental refreshes, "
        f"{result['full_rebuilds']} full rebuilds)  "
        f"{1e6 * result['refresh_secs_per_op']:.1f}us/op",
        f"full compile_router(): {1e3 * result['full_compile_secs']:.2f}ms  "
        f"-> incremental refresh speedup {result['refresh_speedup']:.1f}x "
        "per churn op",
        f"owners cross-check: {'PASS' if result['owners_ok'] else 'FAIL'}",
    ]
    return "\n".join(lines)


@register("X4")
def run(seed: int = 23, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [1024] if quick else [4096, 16384]
        lookups = 20_000 if quick else 100_000
        churn_ops = 96 if quick else 256
        rows = []
        checks: Dict[str, bool] = {}
        owners_ok = True
        speedups = []
        smooth_ok = True
        retained = []
        for n in sizes:
            res = measure_churn_soak(
                n=n, lookups=lookups, phases=2, churn_ops=churn_ops,
                seed=seed, mass_n=min(n, 8192),
            )
            owners_ok &= res["owners_ok"]
            speedups.append(res["refresh_speedup"])
            smooth_ok &= math.isfinite(res["final_smoothness"])
            retained.append(res["final_rate"] / res["baseline_rate"])
            for row in res["rows"]:
                rows.append({"n_start": n, **row})
        checks["every batch's owners match the live segment map"] = owners_ok
        checks["smoothness stays finite through mass departure"] = smooth_ok
        floor = 2.0 if quick else 5.0
        checks[
            f"incremental refresh ≥ {floor:g}x faster than full compile "
            f"per op at n={sizes[-1]} (got {speedups[-1]:.1f}x)"
        ] = speedups[-1] >= floor
        checks[
            f"post-soak throughput ≥ 0.2x baseline (got {min(retained):.2f}x)"
        ] = min(retained) >= 0.2
        return ExperimentResult(
            experiment="X4",
            title="Churn soak (incremental router under membership change)",
            paper_claim="extension of §2.1 locality: joins/leaves patch the "
            "batch router in O(affected region); lookups stay correct and "
            "fast through churn incl. 50% mass departure (§4.1)",
            rows=rows,
            checks=checks,
        )

    return timed(body)
