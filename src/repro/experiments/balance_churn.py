"""E11 — smoothness under deletions: the bucket solution (§4.1).

The paper's motivating observation: delete each of 2n smooth points with
probability ½ and w.h.p. some Ω(log n) consecutive run disappears,
leaving a segment of length Ω(log n / n).  The bucket scheme
(Θ(log n)-server coordination groups) repairs this.  We measure the
post-deletion smoothness of

* the naive rule (predecessor absorbs, no rebalancing),
* Multiple-Choice ids with naive deletions,
* the bucket balancer,

plus the bucket scheme's amortised id-movement cost.
"""

from __future__ import annotations

import math
from typing import Dict, List


from ..balance import BucketBalancer, MultipleChoice
from ..core.segments import SegmentMap
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("E11")
def run(seed: int = 11, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 512 if quick else 2048
        rows: List[Dict] = []
        rng1, rng2, rng3, rng4 = spawn_many(seed * 47, 4)

        # naive: uniform ids, delete half
        sm = SegmentMap()
        pts = []
        for _ in range(2 * n):
            p = float(rng1.random())
            if p not in sm:
                sm.insert(p)
                pts.append(p)
        rng1.shuffle(pts)
        for p in pts[:n]:
            sm.remove(p)
        naive_rho = sm.smoothness()
        naive_max = sm.max_segment_length()
        rows.append({"scheme": "naive(single ids)", "n_after": len(sm),
                     "rho": round(naive_rho, 1),
                     "max_seg*n/logn": round(naive_max * len(sm) / math.log(len(sm)), 2),
                     "id_moves/op": 0.0})

        # multiple choice ids, naive deletions
        sm2 = SegmentMap()
        mc = MultipleChoice(t=4)
        pts2 = []
        for _ in range(2 * n):
            p = mc.select(sm2, rng2)
            sm2.insert(p)
            pts2.append(p)
        rng2.shuffle(pts2)
        for p in pts2[:n]:
            sm2.remove(p)
        mc_rho = sm2.smoothness()
        rows.append({"scheme": "multiple-choice ids", "n_after": len(sm2),
                     "rho": round(mc_rho, 1),
                     "max_seg*n/logn": round(sm2.max_segment_length() * len(sm2) / math.log(len(sm2)), 2),
                     "id_moves/op": 0.0})

        # bucket balancer
        bb = BucketBalancer(rebalance_threshold=3.0)
        handles = [bb.join(rng3) for _ in range(2 * n)]
        rng3.shuffle(handles)
        for h in handles[:n]:
            bb.leave(h, rng3)
        bb.check_invariants()
        bucket_rho = bb.smoothness()
        moves_per_op = bb.total_id_changes / (3 * n)
        rows.append({"scheme": "bucket(§4.1)", "n_after": bb.n,
                     "rho": round(bucket_rho, 1),
                     "max_seg*n/logn": round(
                         bb.segments.max_segment_length() * bb.n / math.log(bb.n), 2),
                     "id_moves/op": round(moves_per_op, 2)})

        logn = math.log2(n)
        checks = {
            "naive deletions blow up ρ (≫ polylog)": naive_rho > logn**1.5,
            "MC ids alone do not survive deletions": mc_rho > 8,
            "bucket scheme keeps ρ polylog": bucket_rho <= 4 * logn**2,
            "bucket beats naive by ≥ 4x on ρ": naive_rho / bucket_rho >= 4,
            "amortised id moves per op modest (≤ 2 log² n)": moves_per_op
            <= 2 * logn**2,
        }
        return ExperimentResult(
            experiment="E11",
            title="Smoothness under deletions — bucket scheme (§4.1)",
            paper_claim="naive deletion leaves Ω(log n/n) gaps; buckets repair",
            rows=rows,
            checks=checks,
            notes=f"2n = {2*n} joins then n = {n} random deletions",
        )

    return timed(body)
