"""E4 — congestion of random lookups (Theorems 2.7, 2.9).

Definition 3: congestion of a server = probability it participates in a
lookup between a random server and a random point; the theorems put the
network maximum at ``Θ(log n / n)`` for smooth ids, for both lookup
algorithms.  We estimate with many random lookups and track
``max_congestion · n / log n`` across sizes — it must stay bounded (and
not vanish: the owner itself always participates).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..balance import MultipleChoice
from ..core import CongestionCounter, DistanceHalvingNetwork, dh_lookup, fast_lookup
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


@register("E4")
def run(seed: int = 4, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [64, 256] if quick else [64, 128, 256, 512, 1024]
        lookups = 1500 if quick else 6000
        rows: List[Dict] = []
        norms = {"fast": [], "dh": []}
        for n in sizes:
            rng, route = spawn_many(seed * 17 + n, 2)
            net = DistanceHalvingNetwork(rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            pts = list(net.points())
            counters = {"fast": CongestionCounter(), "dh": CongestionCounter()}
            for _ in range(lookups):
                src = pts[int(route.integers(n))]
                y = float(route.random())
                counters["fast"].record(fast_lookup(net, src, y))
                counters["dh"].record(dh_lookup(net, src, y, route))
            row: Dict = {"n": n, "rho": round(net.smoothness(), 2)}
            for name, c in counters.items():
                cong = c.max_congestion()
                norm = cong * n / math.log2(n)
                norms[name].append(norm)
                row[f"{name}_maxcong"] = round(cong, 4)
                row[f"{name}_cong*n/logn"] = round(norm, 2)
            rows.append(row)
        checks = {
            "Thm 2.7: fast congestion·n/log n bounded": max(norms["fast"]) <= 12,
            "Thm 2.9: DH congestion·n/log n bounded": max(norms["dh"]) <= 12,
            "congestion really is Θ(log n/n), not o(·): norm ≥ 0.3": min(
                norms["fast"] + norms["dh"]
            )
            >= 0.3,
            "normalised congestion flat across sizes (±4x)": max(
                max(v) / min(v) for v in norms.values()
            )
            <= 4.0,
        }
        return ExperimentResult(
            experiment="E4",
            title="Congestion of random lookups (Thm 2.7 / 2.9)",
            paper_claim="max congestion Θ(log n / n) for smooth ids",
            rows=rows,
            checks=checks,
        )

    return timed(body)
