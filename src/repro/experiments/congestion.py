"""E4 — congestion of random lookups (Theorems 2.7, 2.9).

Definition 3: congestion of a server = probability it participates in a
lookup between a random server and a random point; the theorems put the
network maximum at ``Θ(log n / n)`` for smooth ids, for both lookup
algorithms.  We estimate with many random lookups and track
``max_congestion · n / log n`` across sizes — it must stay bounded (and
not vanish: the owner itself always participates).

Routing and accounting run on the vectorized CSR path spine: whole
workloads go through ``net.router(auto_refresh=True)`` with
``keep_paths="csr"`` and are booked into a
:class:`~repro.core.routing_stats.BatchCongestion` with one
``np.bincount`` per batch, which scales the headline size from the old
scalar-loop ceiling of 1024 to 16384 servers.  At the smallest size the
same sub-workload is replayed through the scalar engine +
:class:`~repro.core.routing_stats.CongestionCounter` and the two
summaries must agree **bit-for-bit** (same ``max_load`` / ``mean_load``
/ ``max_congestion`` / ``total_messages``).

The measurement helper :func:`measure_congestion` is shared by this
experiment, ``benchmarks/bench_congestion.py`` and the
``bench-congestion`` CLI subcommand.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

import numpy as np

from ..balance import MultipleChoice
from ..core import (
    BatchCongestion,
    CongestionCounter,
    DistanceHalvingNetwork,
    lookup_many,
)
from ..sim.rng import spawn_many
from ..sim.workload import DH_TAU_DIGITS, route_pairs
from .common import ExperimentResult, register, timed

__all__ = ["measure_congestion", "format_congestion_report"]


def _scalar_congestion(net, sources, targets, algorithm: str,
                       tau: Optional[np.ndarray]) -> CongestionCounter:
    """The reference per-lookup loop: scalar engine + Counter accounting."""
    taus = None
    if algorithm == "dh":
        taus = [list(row) for row in tau]
    counter = CongestionCounter()
    for r in lookup_many(net, sources, targets, algorithm=algorithm,
                         taus=taus):
        counter.record(r)
    return counter


def measure_congestion(
    n: int = 16384,
    lookups: int = 100_000,
    seed: int = 0,
    scalar_sample: int = 1000,
    algorithm: str = "fast",
    delta: int = 2,
    net: Optional[DistanceHalvingNetwork] = None,
    workers: int = 1,
) -> Dict:
    """Route-and-account ``lookups`` random pairs, batch vs scalar.

    Builds (or reuses) an ``n``-server Multiple-Choice-balanced network,
    routes the whole workload through an auto-refresh router with CSR
    paths into a :class:`BatchCongestion`, and replays the first
    ``scalar_sample`` pairs through the scalar engine + Counter loop.
    The subsample is also routed as its own batch so the two accounting
    backends can be compared bit-for-bit (``summary()`` equality).  For
    ``algorithm='dh'`` both engines are driven by the same explicit
    digit strings.  Returns rates, the end-to-end accounting speedup,
    the congestion stats, and the parity verdict.

    ``workers > 1`` routes the timed bulk workload through the
    shared-memory sharded backend (results — and therefore every parity
    check — are bit-identical by construction); the warmup batch spins
    the pool up outside the timed window, and the scalar subsample
    replays stay in-process.
    """
    if algorithm not in ("fast", "dh"):
        raise ValueError(f"unknown algorithm {algorithm!r}; use 'fast' or 'dh'")
    if net is not None:
        n = net.n
    if n < 2:
        raise ValueError("measure_congestion needs n >= 2 (cong_norm "
                         "divides by log2 n)")
    build_rng, route = spawn_many(seed * 29 + n, 2)
    if net is None:
        net = DistanceHalvingNetwork(delta=delta, rng=build_rng)
        net.populate(n, selector=MultipleChoice(t=4))

    t0 = time.perf_counter()
    router = net.router(auto_refresh=True,
                        with_adjacency=(algorithm == "dh"))
    compile_secs = time.perf_counter() - t0

    pts = net.segments.as_array()
    sources = pts[route.integers(0, n, size=lookups)]
    targets = route.random(lookups)
    m = min(scalar_sample, lookups)
    tau = None
    if algorithm == "dh":
        tau = route.integers(0, net.delta, size=(lookups, DH_TAU_DIGITS))

    # untimed warmup: the first big batch of a cold process pays page
    # faults and allocator growth (and, sharded, the pool spin-up +
    # snapshot export) that say nothing about steady state
    warm = min(2000, lookups)
    route_pairs(router, (sources[:warm], targets[:warm]),
                algorithm=algorithm,
                tau=tau[:warm] if tau is not None else None,
                workers=workers)

    try:
        t0 = time.perf_counter()
        batch_cong = BatchCongestion()
        route_pairs(router, (sources, targets), algorithm=algorithm, tau=tau,
                    congestion=batch_cong, workers=workers)
        batch_secs = time.perf_counter() - t0
    finally:
        router.close_executor()

    t0 = time.perf_counter()
    scalar_cong = _scalar_congestion(
        net, sources[:m], targets[:m], algorithm,
        tau[:m] if tau is not None else None)
    scalar_secs = time.perf_counter() - t0

    # bit-identical cross-check on the shared subsample
    sub = BatchCongestion()
    route_pairs(router, (sources[:m], targets[:m]), algorithm=algorithm,
                tau=tau[:m] if tau is not None else None, congestion=sub)
    parity = sub.summary(net.n) == scalar_cong.summary(net.n)

    batch_rate = lookups / batch_secs if batch_secs > 0 else math.inf
    scalar_rate = m / scalar_secs if scalar_secs > 0 else math.inf
    summary = batch_cong.summary(net.n)
    return {
        "algorithm": algorithm,
        "n": net.n,
        "rho": float(net.smoothness()),
        "lookups": lookups,
        "workers": workers,
        "scalar_sample": m,
        "compile_secs": compile_secs,
        "batch_secs": batch_secs,
        "scalar_secs": scalar_secs,
        "batch_rate": batch_rate,
        "scalar_rate": scalar_rate,
        "speedup": batch_rate / scalar_rate if scalar_rate > 0 else math.inf,
        "parity_ok": bool(parity),
        "max_load": summary["max_load"],
        "mean_load": summary["mean_load"],
        "max_congestion": summary["max_congestion"],
        "cong_norm": summary["max_congestion"] * net.n / math.log2(net.n),
        "total_messages": summary["total_messages"],
    }


def format_congestion_report(result: Dict) -> str:
    """Human-readable multi-line summary of one measurement dict."""
    lines = [
        f"network: n={result['n']}  rho={result['rho']:.2f}  "
        f"algorithm={result['algorithm']}  "
        f"(router compiled in {result['compile_secs']:.3f}s)",
        f"batch : {result['lookups']:>8} lookups routed+accounted in "
        f"{result['batch_secs']:.3f}s  = {result['batch_rate']:>12,.0f} "
        f"lookups/sec",
        f"scalar: {result['scalar_sample']:>8} lookups routed+accounted in "
        f"{result['scalar_secs']:.3f}s  = {result['scalar_rate']:>12,.0f} "
        f"lookups/sec",
        f"speedup: {result['speedup']:.1f}x   max_load: "
        f"{result['max_load']:.0f}   max_congestion: "
        f"{result['max_congestion']:.5f}  "
        f"(·n/log n = {result['cong_norm']:.2f})",
        f"accounting parity (summary() on scalar subsample): "
        f"{'PASS' if result['parity_ok'] else 'FAIL'}",
    ]
    return "\n".join(lines)


@register("E4")
def run(seed: int = 4, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [256, 1024] if quick else [1024, 4096, 16384]
        lookups = 4000 if quick else 60_000
        cross_check = 300 if quick else 500
        rows: List[Dict] = []
        norms = {"fast": [], "dh": []}
        parity_ok = True
        for n in sizes:
            rng, route = spawn_many(seed * 17 + n, 2)
            net = DistanceHalvingNetwork(rng=rng)
            net.populate(n, selector=MultipleChoice(t=4))
            router = net.router(auto_refresh=True, with_adjacency=True)
            pts = net.segments.as_array()
            sources = pts[route.integers(0, n, size=lookups)]
            targets = route.random(lookups)
            tau = route.integers(0, net.delta, size=(lookups, DH_TAU_DIGITS))
            counters: Dict[str, BatchCongestion] = {}
            for name in ("fast", "dh"):
                cong = BatchCongestion()
                route_pairs(router, (sources, targets), algorithm=name,
                            tau=tau if name == "dh" else None,
                            congestion=cong)
                counters[name] = cong
            if n == sizes[0]:
                # scalar cross-check: identical sub-workload, identical stats
                m = min(lookups, cross_check)
                for name, _cong in counters.items():
                    scal = _scalar_congestion(net, sources[:m], targets[:m],
                                              name, tau[:m])
                    sub = BatchCongestion()
                    route_pairs(router, (sources[:m], targets[:m]),
                                algorithm=name,
                                tau=tau[:m] if name == "dh" else None,
                                congestion=sub)
                    parity_ok &= sub.summary(n) == scal.summary(n)
            row: Dict = {"n": n, "rho": round(net.smoothness(), 2),
                         "lookups": lookups}
            for name, c in counters.items():
                cong = c.max_congestion()
                norm = cong * n / math.log2(n)
                norms[name].append(norm)
                row[f"{name}_maxcong"] = round(cong, 5)
                row[f"{name}_cong*n/logn"] = round(norm, 2)
            rows.append(row)
        checks = {
            "Thm 2.7: fast congestion·n/log n bounded": max(norms["fast"]) <= 12,
            "Thm 2.9: DH congestion·n/log n bounded": max(norms["dh"]) <= 12,
            "congestion really is Θ(log n/n), not o(·): norm ≥ 0.3": min(
                norms["fast"] + norms["dh"]
            )
            >= 0.3,
            "normalised congestion flat across sizes (±4x)": max(
                max(v) / min(v) for v in norms.values()
            )
            <= 4.0,
            f"batch CSR accounting bit-identical to scalar counters "
            f"(n={sizes[0]})": parity_ok,
        }
        return ExperimentResult(
            experiment="E4",
            title="Congestion of random lookups (Thm 2.7 / 2.9)",
            paper_claim="max congestion Θ(log n / n) for smooth ids",
            rows=rows,
            checks=checks,
            notes="batch-routed with CSR path accounting "
            "(BatchCongestion); scalar cross-check at the smallest size",
        )

    return timed(body)
