"""E10 — id balancing schemes (Lemmas 4.1–4.3, Theorem 4.4).

Grows a decomposition to ``n`` with each §4 strategy and measures the
min/max segment lengths against the per-scheme predictions:

=================  =======================  =====================
scheme             longest segment          shortest segment
=================  =======================  =====================
single choice      Θ(log n / n)             Θ(1/n²)
improved single    O(log n / n)             Θ(1/(n log n))
multiple choice    O(1/n)                   ≥ 1/(4n) w.h.p.
=================  =======================  =====================

Theorem 4.4 (self-correction): from an adversarial initial configuration
of m points, n Multiple-Choice inserts bring the max segment to O(1/n).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..balance import ImprovedSingleChoice, MultipleChoice, SingleChoice
from ..core.segments import SegmentMap
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


def _grow(strategy, n, rng) -> SegmentMap:
    sm = SegmentMap()
    for _ in range(n):
        sm.insert(strategy.select(sm, rng))
    return sm


@register("E10")
def run(seed: int = 10, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        n = 1024 if quick else 4096
        reps = 2 if quick else 3
        rows: List[Dict] = []
        stats: Dict[str, Dict[str, float]] = {}
        for name, strategy in [
            ("single", SingleChoice()),
            ("improved", ImprovedSingleChoice()),
            ("multiple(t=4)", MultipleChoice(t=4)),
        ]:
            mins, maxs, rhos = [], [], []
            for r in range(reps):
                rng = spawn_many(seed * 41 + r + hash(name) % 97, 1)[0]
                sm = _grow(strategy, n, rng)
                mins.append(sm.min_segment_length())
                maxs.append(sm.max_segment_length())
                rhos.append(sm.smoothness())
            stats[name] = {
                "min": float(np.mean(mins)),
                "max": float(np.mean(maxs)),
                "rho": float(np.mean(rhos)),
            }
            rows.append(
                {
                    "scheme": name,
                    "n": n,
                    "min_seg*n": round(stats[name]["min"] * n, 4),
                    "max_seg*n/log n": round(stats[name]["max"] * n / math.log(n), 2),
                    "rho": round(stats[name]["rho"], 1),
                }
            )
        # Theorem 4.4 self-correction
        rng = spawn_many(seed * 43, 1)[0]
        sm = SegmentMap()
        for i in range(128):
            sm.insert(i * 1e-7)  # adversarial clump
        before = sm.max_segment_length()
        mc = MultipleChoice(t=8)
        for _ in range(n):
            sm.insert(mc.select(sm, rng))
        after = sm.max_segment_length()
        rows.append(
            {
                "scheme": "self-correct(Thm4.4)",
                "n": n,
                "min_seg*n": round(sm.min_segment_length() * n, 6),
                "max_seg*n/log n": round(after * n / math.log(n), 3),
                "rho": round(before / after, 1),
            }
        )
        logn = math.log(n)
        checks = {
            "Lem 4.1: single max ∈ Θ(log n/n)": 0.3 <= stats["single"]["max"] * n / logn <= 5,
            "Lem 4.1: single min ≪ 1/(4n) (n² scale)": stats["single"]["min"] < 1 / (4 * n),
            "Lem 4.2: improved min ∈ Ω(1/(n log n))": stats["improved"]["min"]
            >= 0.05 / (n * logn),
            "Lem 4.2: improved beats single on ρ": stats["improved"]["rho"]
            < stats["single"]["rho"],
            "Lem 4.3: multiple min ≥ 1/(4n)": stats["multiple(t=4)"]["min"] >= 1 / (4 * n),
            "multiple max = O(1/n)": stats["multiple(t=4)"]["max"] <= 8 / n,
            "Thm 4.4: adversarial start corrected to max ≤ 16/n": after <= 16 / n,
        }
        return ExperimentResult(
            experiment="E10",
            title="Id balancing (Lem 4.1–4.3, Thm 4.4)",
            paper_claim="per-scheme min/max segment scales; MC self-corrects",
            rows=rows,
            checks=checks,
            notes=f"n={n}, {reps} repetitions (means shown)",
        )

    return timed(body)
