"""E2 — structural theorems of the discrete DH graph (Thm 2.1, 2.2).

Measured at several sizes and id distributions (uniform, balanced,
adversarially clustered):

* Theorem 2.1: distinct edges without ring edges ≤ 3n − 1 (and therefore
  average degree ≤ 6);
* Theorem 2.2: max out-degree ≤ ρ + 4, max in-degree ≤ ⌈2ρ⌉ + 1.
"""

from __future__ import annotations

import math
from typing import Dict, List


from ..balance import MultipleChoice
from ..core import DistanceHalvingNetwork
from ..sim.rng import spawn_many
from .common import ExperimentResult, register, timed


def _build(kind: str, n: int, rng) -> DistanceHalvingNetwork:
    net = DistanceHalvingNetwork(rng=rng)
    if kind == "uniform":
        net.populate(n)
    elif kind == "balanced":
        net.populate(n, selector=MultipleChoice(t=4))
    else:  # clustered adversary: half the ids inside a tiny arc
        for i in range(n // 2):
            net.join(0.3 + i * 1e-7)
        net.populate(n - n // 2)
    return net


@register("E2")
def run(seed: int = 2, quick: bool = False) -> ExperimentResult:
    def body() -> ExperimentResult:
        sizes = [64, 256] if quick else [64, 256, 1024, 4096]
        kinds = ["uniform", "balanced", "clustered"]
        rows: List[Dict] = []
        checks: Dict[str, bool] = {}
        edge_ok = out_ok = in_ok = avg_ok = True
        for n in sizes:
            for k, kind in enumerate(kinds):
                rng = spawn_many(seed * 31 + n + k, 1)[0]
                net = _build(kind, n, rng)
                rho = net.smoothness()
                edges = net.edge_count()
                mo, mi = net.max_out_degree(), net.max_in_degree()
                avg = net.average_degree()
                edge_ok &= edges <= 3 * n - 1
                out_ok &= mo <= rho + 4
                in_ok &= mi <= math.ceil(2 * rho) + 1
                avg_ok &= avg <= 8.0  # ≤6 continuous + 2 ring
                rows.append(
                    {
                        "n": n,
                        "ids": kind,
                        "rho": round(rho, 1),
                        "edges": edges,
                        "3n-1": 3 * n - 1,
                        "max_out": mo,
                        "rho+4": round(rho + 4, 1),
                        "max_in": mi,
                        "2rho+1": math.ceil(2 * rho) + 1,
                        "avg_deg": round(avg, 2),
                    }
                )
        checks["Thm 2.1: edges ≤ 3n−1 (all sizes, all id distributions)"] = edge_ok
        checks["Thm 2.1 corollary: average degree ≤ 6 (+2 ring)"] = avg_ok
        checks["Thm 2.2: max out-degree ≤ ρ+4"] = out_ok
        checks["Thm 2.2: max in-degree ≤ ⌈2ρ⌉+1"] = in_ok
        return ExperimentResult(
            experiment="E2",
            title="Structural bounds of G_x (Theorems 2.1, 2.2)",
            paper_claim="≤3n−1 edges; out-deg ≤ ρ+4; in-deg ≤ ⌈2ρ⌉+1",
            rows=rows,
            checks=checks,
        )

    return timed(body)
