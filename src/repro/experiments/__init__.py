"""Experiment harness: paper-vs-measured reproduction of every table,
figure and measurable theorem (see DESIGN.md for the index)."""

from .common import ExperimentResult, all_experiments, format_rows, get_experiment

__all__ = ["ExperimentResult", "all_experiments", "format_rows", "get_experiment"]
